// Package loctable provides the sharded location table behind an IAgent:
// agent-id → node mappings split over N power-of-two stripes, each behind
// its own sync.RWMutex. Stripes are selected from the agent id's mixed hash
// bits, so concurrent Get calls (the locate hot path) never contend with
// each other and only collide with a Put/Delete that lands on the same
// stripe. Full-table operations (Snapshot, Range) take one stripe lock at a
// time — readers and writers on other stripes proceed while a snapshot or a
// checkpoint iteration is in flight; there is no global pause.
//
// Each stripe stores its entries in a dense open-addressed array — flat
// {hash, agent, node} slots with linear probing and backward-shift deletion
// — instead of a Go map. At the million-agent scale an IAgent is sized for,
// the flat layout halves the per-entry overhead (no bucket headers, no
// tombstones, one pointer-free probe sequence per lookup) and keeps probes
// on one cache line most of the time. Node ids are interned per table, so a
// million entries pointing at a handful of nodes share a handful of string
// allocations.
//
// A Table gob-encodes stripe-by-stripe (one lock at a time, parallel
// key/value slices per stripe) so migrating a behaviour never materializes
// the whole table as a single map, and binary Serialize/Deserialize (see
// serialize.go) give it a durable framed form for snapshot files. Both
// formats are unchanged from the map-backed implementation: dumps and gob
// streams interoperate across versions in either direction.
package loctable

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"agentloc/internal/ids"
	"agentloc/internal/platform"
)

// DefaultStripes is the stripe count used by New. 16 stripes keep stripe
// collisions between a reader and a writer below ~6% while the per-table
// footprint stays negligible.
const DefaultStripes = 16

// Open-addressing parameters. Stripes grow at 3/4 load — linear probing
// degrades sharply beyond that — and shrink when they fall below 1/8, so a
// table that handed off most of its id space after a rehash returns the
// memory. minStripeCap keeps tiny tables from resizing constantly.
const (
	minStripeCap  = 8
	loadNum       = 3
	loadDen       = 4
	shrinkDivisor = 8
)

// entry is one dense slot: the agent's mixed hash (0 marks a free slot; the
// hash value 0 itself is remapped to 1, costing one indistinguishable
// collision per 2^64 ids), the agent id, and its interned node ref.
type entry struct {
	hash  uint64
	agent ids.AgentID
	node  platform.NodeID
}

// stripe is one lock-plus-dense-array shard of the table.
type stripe struct {
	mu      sync.RWMutex
	entries []entry // power-of-two length, nil until first Put
	used    int
}

// Table is a sharded agent-location map, safe for concurrent use.
type Table struct {
	stripes []stripe
	mask    uint64
	// shift discards the hash bits already consumed by stripe selection, so
	// slot probing inside a stripe starts from bits that still vary.
	shift uint
	count atomic.Int64

	// nodeMu guards nodes, the per-table node-id intern map. A cluster has
	// few nodes and a table has up to millions of entries; interning makes
	// every entry's node field share one backing string. Each interned id
	// carries a reference count — one ref per table entry pointing at it —
	// so a node whose last entry is deleted (or replaced by a Put to a
	// different node) leaves the map instead of leaking: long-lived tables
	// on churny clusters would otherwise accumulate an intern entry for
	// every node id they ever saw.
	nodeMu sync.RWMutex
	nodes  map[platform.NodeID]*nodeRef
}

// nodeRef is one interned node id plus the number of live table entries
// referencing it. refs is atomic so the acquire fast path (node already
// interned — the overwhelmingly common case) only takes the read lock.
type nodeRef struct {
	canon platform.NodeID
	refs  atomic.Int64
}

// New returns an empty table with DefaultStripes stripes.
func New() *Table { return NewWithStripes(DefaultStripes) }

// NewWithStripes returns an empty table with n stripes, rounded up to the
// next power of two (minimum 1).
func NewWithStripes(n int) *Table {
	size := 1
	for size < n {
		size <<= 1
	}
	return &Table{
		stripes: make([]stripe, size),
		mask:    uint64(size - 1),
		shift:   uint(bits.TrailingZeros(uint(size))),
		nodes:   make(map[platform.NodeID]*nodeRef),
	}
}

// stripeFor selects the stripe serving the agent and returns the hash bits
// left for slot probing. The hash tree consumes the id's leading bits, so a
// leaf deep in the tree serves ids that share a long prefix; striping by
// the hash's LOW bits keeps the stripes of a hot leaf uniformly loaded
// regardless of the leaf's depth, and probing starts above them.
func (t *Table) stripeFor(h uint64) (*stripe, uint64) {
	sh := h >> t.shift
	if sh == 0 {
		sh = 1
	}
	return &t.stripes[h&t.mask], sh
}

// acquireNode canonicalises a node id and takes one reference on it,
// zero-alloc once seen. Every table entry holds exactly one reference on
// its node; releaseNode drops it when the entry is deleted or re-pointed.
func (t *Table) acquireNode(node platform.NodeID) platform.NodeID {
	t.nodeMu.RLock()
	if r, ok := t.nodes[node]; ok {
		// Deletion requires the write lock, so r cannot vanish while we
		// hold the read lock; incrementing here makes it visible to the
		// zero-recheck in releaseNode.
		r.refs.Add(1)
		t.nodeMu.RUnlock()
		return r.canon
	}
	t.nodeMu.RUnlock()
	t.nodeMu.Lock()
	r, ok := t.nodes[node]
	if !ok {
		r = &nodeRef{canon: node}
		t.nodes[node] = r
	}
	r.refs.Add(1)
	t.nodeMu.Unlock()
	return r.canon
}

// releaseNode drops one reference on an interned node id, evicting the
// intern entry when the last table entry referencing it disappears.
func (t *Table) releaseNode(node platform.NodeID) {
	t.nodeMu.RLock()
	r, ok := t.nodes[node]
	t.nodeMu.RUnlock()
	if !ok {
		return
	}
	if r.refs.Add(-1) > 0 {
		return
	}
	// Possibly the last reference: re-check under the write lock, since a
	// concurrent acquireNode may have resurrected the count.
	t.nodeMu.Lock()
	if cur, ok := t.nodes[node]; ok && cur == r && r.refs.Load() <= 0 {
		delete(t.nodes, node)
	}
	t.nodeMu.Unlock()
}

// InternedNodes reports how many distinct node ids the table currently
// interns. Exposed for churn tests: it must track the live node set, not
// every node the table has ever seen.
func (t *Table) InternedNodes() int {
	t.nodeMu.RLock()
	n := len(t.nodes)
	t.nodeMu.RUnlock()
	return n
}

// find locates the slot for (h, agent): the entry's index if present, else
// the free slot where it would be inserted. Caller holds the stripe lock.
// Load is kept strictly below 1, so the probe always terminates.
func (s *stripe) find(h uint64, agent ids.AgentID) (int, bool) {
	mask := len(s.entries) - 1
	i := int(h) & mask
	for {
		e := &s.entries[i]
		if e.hash == 0 {
			return i, false
		}
		if e.hash == h && e.agent == agent {
			return i, true
		}
		i = (i + 1) & mask
	}
}

// findBytes is find with a raw byte key, comparing id bytes without a
// string conversion.
func (s *stripe) findBytes(h uint64, agent []byte) (int, bool) {
	mask := len(s.entries) - 1
	i := int(h) & mask
	for {
		e := &s.entries[i]
		if e.hash == 0 {
			return i, false
		}
		if e.hash == h && string(e.agent) == string(agent) { // no alloc: comparison only
			return i, true
		}
		i = (i + 1) & mask
	}
}

// resize rehashes the stripe into a table of the given power-of-two
// capacity. Entries are unique, so insertion probes to the first free slot
// without equality checks.
func (s *stripe) resize(capacity int) {
	old := s.entries
	s.entries = make([]entry, capacity)
	mask := capacity - 1
	for i := range old {
		e := &old[i]
		if e.hash == 0 {
			continue
		}
		j := int(e.hash) & mask
		for s.entries[j].hash != 0 {
			j = (j + 1) & mask
		}
		s.entries[j] = *e
	}
}

// removeAt deletes the entry at slot i by backward shifting: every
// displaced successor in the probe chain moves one step closer to its home
// slot, so the table never needs tombstones and lookups stay O(probe).
func (s *stripe) removeAt(i int) {
	mask := len(s.entries) - 1
	j := i
	for {
		j = (j + 1) & mask
		e := &s.entries[j]
		if e.hash == 0 {
			break
		}
		home := int(e.hash) & mask
		// e may fill the hole only if its home slot does not lie strictly
		// between the hole and its current slot (cyclically): moving it to i
		// must not place it before its home.
		if (j-home)&mask >= (j-i)&mask {
			s.entries[i] = *e
			i = j
		}
	}
	s.entries[i] = entry{}
	s.used--
}

// Get returns the recorded node of an agent.
func (t *Table) Get(agent ids.AgentID) (platform.NodeID, bool) {
	s, h := t.stripeFor(agent.Hash64())
	s.mu.RLock()
	if s.entries == nil {
		s.mu.RUnlock()
		return "", false
	}
	i, ok := s.find(h, agent)
	var node platform.NodeID
	if ok {
		node = s.entries[i].node
	}
	s.mu.RUnlock()
	return node, ok
}

// GetBytes is Get with a raw byte key: decode paths that hold the agent id
// as bytes can probe the table without allocating a string.
func (t *Table) GetBytes(agent []byte) (platform.NodeID, bool) {
	s, h := t.stripeFor(ids.HashBytes(agent))
	s.mu.RLock()
	if s.entries == nil {
		s.mu.RUnlock()
		return "", false
	}
	i, ok := s.findBytes(h, agent)
	var node platform.NodeID
	if ok {
		node = s.entries[i].node
	}
	s.mu.RUnlock()
	return node, ok
}

// Put records (or replaces) the agent's node.
func (t *Table) Put(agent ids.AgentID, node platform.NodeID) {
	node = t.acquireNode(node)
	s, h := t.stripeFor(agent.Hash64())
	s.mu.Lock()
	if loadDen*(s.used+1) > loadNum*len(s.entries) {
		capacity := len(s.entries) * 2
		if capacity < minStripeCap {
			capacity = minStripeCap
		}
		s.resize(capacity)
	}
	i, existed := s.find(h, agent)
	var replaced platform.NodeID
	if existed {
		replaced = s.entries[i].node
		s.entries[i].node = node
	} else {
		s.entries[i] = entry{hash: h, agent: agent, node: node}
		s.used++
	}
	s.mu.Unlock()
	if existed {
		// The entry's reference moved to the new node; drop the old one
		// (a no-op net effect when the node is unchanged).
		t.releaseNode(replaced)
	} else {
		t.count.Add(1)
	}
}

// Delete forgets an agent, reporting whether an entry existed.
func (t *Table) Delete(agent ids.AgentID) bool {
	s, h := t.stripeFor(agent.Hash64())
	s.mu.Lock()
	existed := false
	var removed platform.NodeID
	if s.entries != nil {
		var i int
		if i, existed = s.find(h, agent); existed {
			removed = s.entries[i].node
			s.removeAt(i)
			if len(s.entries) > minStripeCap && s.used < len(s.entries)/shrinkDivisor {
				s.resize(len(s.entries) / 2)
			}
		}
	}
	s.mu.Unlock()
	if existed {
		t.releaseNode(removed)
		t.count.Add(-1)
	}
	return existed
}

// Len returns the number of entries. It reads a counter maintained across
// stripes, so it never takes a lock.
func (t *Table) Len() int { return int(t.count.Load()) }

// forEachLocked calls f for every occupied slot of the stripe. Caller holds
// the stripe lock.
func (s *stripe) forEachLocked(f func(agent ids.AgentID, node platform.NodeID) bool) bool {
	for i := range s.entries {
		e := &s.entries[i]
		if e.hash == 0 {
			continue
		}
		if !f(e.agent, e.node) {
			return false
		}
	}
	return true
}

// Snapshot copies the table into a plain map, locking one stripe at a time.
// Entries mutated on already-visited stripes during the copy may be missed —
// the same weak consistency a concurrent map range would give, and exactly
// what incremental checkpointing tolerates.
func (t *Table) Snapshot() map[ids.AgentID]platform.NodeID {
	out := make(map[ids.AgentID]platform.NodeID, t.Len())
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		s.forEachLocked(func(a ids.AgentID, n platform.NodeID) bool {
			out[a] = n
			return true
		})
		s.mu.RUnlock()
	}
	return out
}

// Range calls f for every entry until f returns false, holding only the
// current stripe's read lock. f must not call back into the same Table's
// write methods (self-deadlock on the stripe lock).
func (t *Table) Range(f func(agent ids.AgentID, node platform.NodeID) bool) {
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		more := s.forEachLocked(f)
		s.mu.RUnlock()
		if !more {
			return
		}
	}
}

// stripeChunk is the gob wire form of one stripe: parallel slices, so the
// encoder never builds a whole-table map and the chunk's backing arrays are
// reused across stripes.
type stripeChunk struct {
	Agents []ids.AgentID
	Nodes  []platform.NodeID
}

// maxGobStripes bounds the stripe count a decoded header may claim; real
// tables have a handful of stripes, so anything larger is a mangled stream.
const maxGobStripes = 1 << 16

// GobEncode implements gob.GobEncoder. The table serializes as a stripe
// count followed by one chunk per stripe, each copied out under only that
// stripe's read lock — readers and writers on other stripes proceed while a
// migration snapshot is encoding, and no whole-table map is ever built.
func (t *Table) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(len(t.stripes)); err != nil {
		return nil, err
	}
	var chunk stripeChunk
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		chunk.Agents = chunk.Agents[:0]
		chunk.Nodes = chunk.Nodes[:0]
		s.forEachLocked(func(a ids.AgentID, n platform.NodeID) bool {
			chunk.Agents = append(chunk.Agents, a)
			chunk.Nodes = append(chunk.Nodes, n)
			return true
		})
		s.mu.RUnlock()
		if err := enc.Encode(chunk); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder. The stripe count of the encoding
// side is only a chunk count — entries rehash into this table's own
// stripes, so tables with different stripe configurations interoperate.
func (t *Table) GobDecode(data []byte) error {
	dec := gob.NewDecoder(bytes.NewReader(data))
	var stripes int
	if err := dec.Decode(&stripes); err != nil {
		return err
	}
	if stripes <= 0 || stripes > maxGobStripes {
		return fmt.Errorf("loctable: gob: impossible stripe count %d", stripes)
	}
	if t.stripes == nil {
		// Initialize in place; assigning a whole Table would copy its locks.
		fresh := New()
		t.stripes = fresh.stripes
		t.mask = fresh.mask
		t.shift = fresh.shift
		t.nodes = fresh.nodes
	}
	for i := 0; i < stripes; i++ {
		var chunk stripeChunk
		if err := dec.Decode(&chunk); err != nil {
			return err
		}
		if len(chunk.Agents) != len(chunk.Nodes) {
			return fmt.Errorf("loctable: gob: chunk %d has %d agents, %d nodes", i, len(chunk.Agents), len(chunk.Nodes))
		}
		for j, a := range chunk.Agents {
			t.Put(a, chunk.Nodes[j])
		}
	}
	return nil
}
