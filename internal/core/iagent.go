package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"agentloc/internal/capindex"
	"agentloc/internal/ids"
	"agentloc/internal/loctable"
	"agentloc/internal/metrics"
	"agentloc/internal/platform"
	"agentloc/internal/snapshot"
	"agentloc/internal/stats"
	"agentloc/internal/transport"
)

// IAgentBehavior is an Information Agent: it maintains the precise current
// location of every mobile agent hashed to it (paper §2.2), tracks its own
// request rate and per-agent load, and asks the HAgent to split or merge it
// when the rate leaves [Tmin, Tmax].
//
// Exported fields are the durable state that survives migration (IAgents
// are themselves mobile agents); runtime machinery is rebuilt lazily at the
// hosting node.
type IAgentBehavior struct {
	// Cfg is the mechanism configuration.
	Cfg Config
	// Table maps served agents to their current nodes. It is sharded so
	// concurrent locates never contend with each other (a locate and a
	// register only collide when they land on the same stripe), and it
	// gob-encodes as a plain map, so migration snapshots kept their wire
	// format when the field stopped being one.
	Table *loctable.Table
	// Residence records which served agents are bound to which residence
	// handle and where each handle currently is; locate resolves through it
	// so a group migration re-pointing the handle covers every bound member
	// (see residence.go).
	Residence *ResidenceTable
	// Caps is the secondary capability index (tag → served agents), kept
	// in lockstep with Table through register/update/deregister, handoffs,
	// sibling checkpoints and durable sections; Discover queries resolve
	// matches to nodes through Table+Residence, so the index itself never
	// stores locations.
	Caps *capindex.Index
	// StateSnapshot is the IAgent's copy of the hash state, kept current
	// by the HAgent for every rehash the IAgent is involved in.
	StateSnapshot StateDTO
	// LoadSnapshot carries accumulated per-agent request counts across
	// migrations.
	LoadSnapshot map[ids.AgentID]uint64
	// Pending holds messages deposited for served agents until their next
	// check-in (the guaranteed-delivery extension; see discovery.go).
	Pending map[ids.AgentID][]Deposited
	// Checkpoints holds sibling IAgents' table copies, pushed via
	// KindCheckpoint and activated on takeover (crash-tolerance extension;
	// see failover.go).
	Checkpoints map[ids.AgentID]CheckpointState

	once    sync.Once
	initErr error

	// state is the current hash state. Reads are lock-free (State values
	// are immutable once published); writers additionally serialize on mu
	// so a version check and the store it guards stay atomic.
	state atomic.Pointer[State]

	mu      sync.Mutex
	dead    bool
	settled time.Time // creation or last rehash involvement; gates merging

	est   *stats.RateEstimator
	loads *stats.LoadAccount

	// Checkpoint bookkeeping (guarded by mu): which table entries changed
	// since the last push to the sibling leaf, and whether the next push
	// must be a full snapshot (after creation, migration, or a rehash).
	ckDirty   map[ids.AgentID]bool
	ckRemoved map[ids.AgentID]bool
	ckSeq     uint64
	ckFull    bool
	ckBuddy   ids.AgentID

	// Metric handles, rebuilt with the runtime at each hosting node. All
	// are nil-safe no-ops when the node has no registry.
	metReq   map[string]*metrics.Counter // request kind → counter
	metStale *metrics.Counter
	metTable *metrics.Gauge
	metCkLag *metrics.Gauge
}

var (
	_ platform.Behavior           = (*IAgentBehavior)(nil)
	_ platform.Runner             = (*IAgentBehavior)(nil)
	_ platform.ConcurrentBehavior = (*IAgentBehavior)(nil)
)

// ensureRuntime rebuilds the unexported machinery after creation or
// migration.
func (b *IAgentBehavior) ensureRuntime(ctx *platform.Context) error {
	b.once.Do(func() {
		if b.Table == nil {
			b.Table = loctable.New()
		}
		if b.Residence == nil {
			b.Residence = NewResidenceTable()
		}
		if b.Caps == nil {
			b.Caps = capindex.New()
		}
		st, err := FromDTO(b.StateSnapshot)
		if err != nil {
			b.initErr = fmt.Errorf("IAgent %s: %w", ctx.Self(), err)
			return
		}
		b.state.Store(st)
		b.mu.Lock()
		b.settled = ctx.Clock().Now()
		b.mu.Unlock()
		b.est = stats.NewRateEstimator(ctx.Clock(), b.Cfg.RateWindow)
		b.loads = stats.NewLoadAccount()
		for id, n := range b.LoadSnapshot {
			for i := uint64(0); i < n; i++ {
				b.loads.Add(id)
			}
		}
		b.LoadSnapshot = nil
		b.ckDirty = make(map[ids.AgentID]bool)
		b.ckRemoved = make(map[ids.AgentID]bool)
		// First push after creation or migration is a full snapshot: the
		// buddy may hold nothing (or a stale base) for this sender.
		b.ckFull = true

		reg := ctx.Metrics()
		reg.Describe("agentloc_core_iagent_requests_total", "Location-protocol requests served, by IAgent and operation.")
		reg.Describe("agentloc_core_iagent_stale_total", "Requests answered not-responsible (stale client mapping), by IAgent.")
		reg.Describe("agentloc_core_iagent_table_entries", "Location-table entries held, by IAgent.")
		reg.Describe("agentloc_checkpoint_lag_entries", "Location-table updates not yet checkpointed to the sibling leaf, by IAgent.")
		self := string(ctx.Self())
		b.metReq = map[string]*metrics.Counter{
			KindRegister:      reg.Counter("agentloc_core_iagent_requests_total", "iagent", self, "op", "register"),
			KindUpdate:        reg.Counter("agentloc_core_iagent_requests_total", "iagent", self, "op", "update"),
			KindDeregister:    reg.Counter("agentloc_core_iagent_requests_total", "iagent", self, "op", "deregister"),
			KindLocate:        reg.Counter("agentloc_core_iagent_requests_total", "iagent", self, "op", "locate"),
			KindResidenceMove: reg.Counter("agentloc_core_iagent_requests_total", "iagent", self, "op", "residence-move"),
			KindDiscover:      reg.Counter("agentloc_core_iagent_requests_total", "iagent", self, "op", "discover"),
		}
		b.metStale = reg.Counter("agentloc_core_iagent_stale_total", "iagent", self)
		b.metTable = reg.Gauge("agentloc_core_iagent_table_entries", "iagent", self)
		b.metTable.Set(int64(b.Table.Len()))
		b.metCkLag = reg.Gauge("agentloc_checkpoint_lag_entries", "iagent", self)
		b.metCkLag.Set(0)

		// Durable nodes get a full section at birth (and after migration):
		// the base every later checkpoint delta and WAL record applies to.
		b.persistSelf(ctx)
	})
	return b.initErr
}

// HandleConcurrent implements platform.ConcurrentBehavior: locate — the
// hot, read-only path — and the liveness probe touch nothing but
// concurrency-safe state (the immutable hash-state pointer, the sharded
// Table, the wait-free rate estimator, and the striped load account), so
// they are served on the delivering goroutine, concurrently with each other
// and with the mailbox. Every mutating kind declines and goes through the
// serial mailbox, preserving the write-side invariants unchanged.
// Cfg.SerialReads forces everything through the mailbox (the benchmark's
// pre-sharding ablation).
func (b *IAgentBehavior) HandleConcurrent(ctx *platform.Context, kind string, payload []byte) (any, bool, error) {
	if b.Cfg.SerialReads {
		return nil, false, nil
	}
	switch kind {
	case KindLocate:
		if err := b.ensureRuntime(ctx); err != nil {
			return nil, true, err
		}
		b.metReq[KindLocate].Inc()
		var req LocateReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, true, err
		}
		return b.locate(ctx, req.Agent), true, nil
	case KindLocateBatch:
		if err := b.ensureRuntime(ctx); err != nil {
			return nil, true, err
		}
		var req LocateBatchReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, true, err
		}
		return b.locateBatch(ctx, req), true, nil
	case KindDiscover:
		// The capability index, Table and Residence are all individually
		// concurrency-safe, so discovery rides the read fast path beside
		// locates.
		if err := b.ensureRuntime(ctx); err != nil {
			return nil, true, err
		}
		b.metReq[KindDiscover].Inc()
		var req DiscoverReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, true, err
		}
		return b.discover(req), true, nil
	case KindIAgentPing:
		if err := b.ensureRuntime(ctx); err != nil {
			return nil, true, err
		}
		return Ack{Status: StatusOK, HashVersion: b.state.Load().Version()}, true, nil
	default:
		return nil, false, nil
	}
}

// HandleRequest implements platform.Behavior. The platform delivers these
// requests strictly serially (only the read-only kinds above bypass the
// mailbox); the mutex guards the pieces the Run goroutine also reads
// (liveness, settle time, checkpoint bookkeeping, pending mail).
func (b *IAgentBehavior) HandleRequest(ctx *platform.Context, kind string, payload []byte) (any, error) {
	if err := b.ensureRuntime(ctx); err != nil {
		return nil, err
	}
	b.metReq[kind].Inc() // unmatched kinds yield a nil (no-op) handle
	if resp, handled, err := b.decodeDiscovery(ctx, kind, payload); handled {
		return resp, err
	}
	if resp, handled, err := b.decodeFailover(ctx, kind, payload); handled {
		return resp, err
	}
	switch kind {
	case KindRegister:
		// Registration reuses the update shape on the wire (clients send
		// UpdateReq with an empty Residence), so decode the superset; the
		// binding stays cleared either way.
		var req UpdateReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		return b.recordLocation(ctx, req.Agent, req.Node, "", req.Capabilities)
	case KindUpdate:
		var req UpdateReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		return b.recordLocation(ctx, req.Agent, req.Node, req.Residence, req.Capabilities)
	case KindUpdateBatch:
		var req UpdateBatchReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		resp := UpdateBatchResp{Acks: make([]Ack, len(req.Updates))}
		for i, u := range req.Updates {
			b.metReq[KindUpdate].Inc()
			ack, err := b.recordLocation(ctx, u.Agent, u.Node, u.Residence, u.Capabilities)
			if err != nil {
				return nil, err
			}
			resp.Acks[i] = ack
		}
		return resp, nil
	case KindResidenceMove:
		var req ResidenceMoveReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		return b.residenceMove(ctx, req)
	case KindDeregister:
		var req DeregisterReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		return b.deregister(ctx, req.Agent)
	case KindLocate:
		var req LocateReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		return b.locate(ctx, req.Agent), nil
	case KindLocateBatch:
		var req LocateBatchReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		return b.locateBatch(ctx, req), nil
	case KindDiscover:
		var req DiscoverReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		return b.discover(req), nil
	case KindAdoptState:
		var req AdoptStateReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		sp := ctx.StartSpan("control", "iagent.adopt")
		ack, err := b.adoptState(ctx, req)
		sp.End(err)
		return ack, err
	case KindHandoff:
		var req HandoffReq
		if err := transport.Decode(payload, &req); err != nil {
			return nil, err
		}
		sp := ctx.StartSpan("control", "iagent.handoff")
		ack, err := b.handoff(ctx, req)
		sp.End(err)
		return ack, err
	case KindSnapshotDump:
		sec, err := b.durableSection(ctx.Self())
		if err != nil {
			return nil, fmt.Errorf("IAgent %s: snapshot dump: %w", ctx.Self(), err)
		}
		// The capability index travels as its own section: a full snapshot
		// rotation discards the WAL cap deltas it supersedes, so omitting it
		// here would lose every capability written before the rotation.
		return SnapshotDumpResp{
			Status:      StatusOK,
			HashVersion: b.state.Load().Version(),
			Section:     sec,
			Extra:       []snapshot.Section{b.capSection(ctx.Self())},
		}, nil
	default:
		return nil, fmt.Errorf("IAgent %s: unknown request kind %q", ctx.Self(), kind)
	}
}

// responsible reports whether this IAgent currently serves the agent. It is
// lock-free and safe on the concurrent fast path.
func (b *IAgentBehavior) responsible(ctx *platform.Context, agent ids.AgentID) (bool, uint64) {
	st := b.state.Load()
	owner, _, err := st.OwnerOf(agent)
	if err != nil {
		return false, st.Version()
	}
	return owner == ctx.Self(), st.Version()
}

// recordLocation serves register and update requests (paper §2.3: "each
// time A moves, it informs its IAgent about its new location"). A non-empty
// res binds the agent to that residence handle at node; an empty res clears
// any binding — an individually-reported move means the agent left its
// group. A non-empty caps replaces the agent's capability set; empty means
// no capability change, so plain moves never wipe an advertised set. On a
// durable node the update is WAL-logged before it is applied or
// acknowledged; a failed append fails the request.
func (b *IAgentBehavior) recordLocation(ctx *platform.Context, agent ids.AgentID, node platform.NodeID, res ids.ResidenceID, caps []string) (Ack, error) {
	b.est.Record()
	ok, version := b.responsible(ctx, agent)
	if !ok {
		b.metStale.Inc()
		return Ack{Status: StatusNotResponsible, HashVersion: version}, nil
	}
	if err := walAppend(ctx, snapshot.OpPut, agent, node, version); err != nil {
		return Ack{}, err
	}
	b.loads.Add(agent)
	b.Table.Put(agent, node)
	if res != "" {
		b.Residence.Bind(agent, res, node)
	} else {
		b.Residence.Unbind(agent)
	}
	if len(caps) > 0 {
		b.Caps.Set(agent, caps)
		// The location WAL record carries no capability payload; tee the
		// change as its own delta section so it survives a crash before
		// the next full dump.
		b.persistCapDelta(ctx, agent, caps)
	}
	b.mu.Lock()
	b.ckDirty[agent] = true
	delete(b.ckRemoved, agent)
	b.mu.Unlock()
	b.metTable.Set(int64(b.Table.Len()))
	return Ack{Status: StatusOK, HashVersion: version}, nil
}

// residenceMove serves KindResidenceMove: re-point a residence handle at
// its group's new node, covering every bound member this IAgent serves with
// one request. Residence ids are not hashed, so there is no responsibility
// check on the handle itself; the members' bindings only exist here while
// their entries do (adoptState unbinds what it hands off). An unknown
// handle answers StatusUnknownAgent and the sender falls back to per-member
// bound updates, which re-create the record wherever the members live now.
func (b *IAgentBehavior) residenceMove(ctx *platform.Context, req ResidenceMoveReq) (ResidenceMoveResp, error) {
	b.est.Record()
	version := b.state.Load().Version()
	members, known := b.Residence.Move(req.Residence, req.Node)
	if !known {
		return ResidenceMoveResp{Status: StatusUnknownAgent, HashVersion: version}, nil
	}
	// WAL records carry final addresses, so a one-message group move logs
	// one put per member — the durable mirror of what the checkpoint
	// re-push below does for the sibling copy. A failed append fails the
	// request; the sender's retry repeats the (idempotent) move.
	for _, a := range members {
		if err := walAppend(ctx, snapshot.OpPut, a, req.Node, version); err != nil {
			return ResidenceMoveResp{}, err
		}
	}
	// Every member's resolved address changed: their checkpointed entries
	// must be re-pushed, and the load account sees the activity so split
	// decisions stay informed.
	b.mu.Lock()
	for _, a := range members {
		b.ckDirty[a] = true
		delete(b.ckRemoved, a)
	}
	b.mu.Unlock()
	for _, a := range members {
		b.loads.Add(a)
	}
	return ResidenceMoveResp{Status: StatusOK, HashVersion: version, Bound: len(members)}, nil
}

// deregister forgets a disposed agent. The delete is WAL-logged before it
// is applied, like every acknowledged mutation.
func (b *IAgentBehavior) deregister(ctx *platform.Context, agent ids.AgentID) (Ack, error) {
	b.est.Record()
	ok, version := b.responsible(ctx, agent)
	if !ok {
		b.metStale.Inc()
		return Ack{Status: StatusNotResponsible, HashVersion: version}, nil
	}
	if err := walAppend(ctx, snapshot.OpDelete, agent, "", version); err != nil {
		return Ack{}, err
	}
	b.Table.Delete(agent)
	b.Residence.Unbind(agent)
	if b.Caps.Remove(agent) {
		b.persistCapDelta(ctx, agent, nil)
	}
	b.mu.Lock()
	b.ckRemoved[agent] = true
	delete(b.ckDirty, agent)
	b.mu.Unlock()
	b.metTable.Set(int64(b.Table.Len()))
	b.loads.Remove(agent)
	return Ack{Status: StatusOK, HashVersion: version}, nil
}

// locate serves location queries (paper §2.3: the IAgent first checks
// whether it is still responsible for the agent). It takes no locks beyond
// the Table stripe's RLock, so concurrent locates proceed in parallel.
func (b *IAgentBehavior) locate(ctx *platform.Context, agent ids.AgentID) LocateResp {
	b.est.Record()
	ok, version := b.responsible(ctx, agent)
	if !ok {
		b.metStale.Inc()
		return LocateResp{Status: StatusNotResponsible, HashVersion: version}
	}
	b.loads.Add(agent)
	node, found := b.Table.Get(agent)
	if !found {
		return LocateResp{Status: StatusUnknownAgent, HashVersion: version}
	}
	// A bound agent's authoritative address is its handle's: the handle
	// moved with the group even when the member's direct entry is older.
	// Resolve takes only a read lock, so the concurrent fast path keeps its
	// parallelism — and the client receives (and caches) a final address.
	if rn, ok := b.Residence.Resolve(agent); ok {
		node = rn
	}
	return LocateResp{Status: StatusOK, Node: node, HashVersion: version}
}

// locateBatch answers several locates in one frame, each agent judged
// individually like UpdateBatchReq's entries. It touches only the
// concurrency-safe read state, so it rides the concurrent fast path.
func (b *IAgentBehavior) locateBatch(ctx *platform.Context, req LocateBatchReq) LocateBatchResp {
	resp := LocateBatchResp{Results: make([]LocateResp, len(req.Agents))}
	for i, a := range req.Agents {
		b.metReq[KindLocate].Inc()
		resp.Results[i] = b.locate(ctx, a)
	}
	return resp
}

// discover answers a capability query against the secondary index, each
// match resolved to its current node through the location table and the
// residence overlay — the same resolution locate performs, so the caller
// receives final addresses. Matches are Near-preferred, then ordered by
// agent id for determinism, then truncated to the per-leaf limit. There is
// no per-agent responsibility check: the index only ever holds agents this
// IAgent serves (handoffs move capability sets with their entries), and an
// agent absent from the table — a phantom left by a lost removal — is
// simply skipped.
func (b *IAgentBehavior) discover(req DiscoverReq) DiscoverResp {
	b.est.Record()
	version := b.state.Load().Version()
	resp := DiscoverResp{Status: StatusOK, HashVersion: version}
	matched := b.Caps.Match(req.Caps)
	if len(matched) == 0 {
		return resp
	}
	resp.Matches = make([]DiscoverMatch, 0, len(matched))
	for _, agent := range matched {
		node, found := b.Table.Get(agent)
		if !found {
			continue
		}
		if rn, ok := b.Residence.Resolve(agent); ok {
			node = rn
		}
		resp.Matches = append(resp.Matches, DiscoverMatch{Agent: agent, Node: node})
	}
	sort.Slice(resp.Matches, func(i, j int) bool {
		mi, mj := resp.Matches[i], resp.Matches[j]
		if req.Near != "" && (mi.Node == req.Near) != (mj.Node == req.Near) {
			return mi.Node == req.Near
		}
		return mi.Agent < mj.Agent
	})
	if req.Limit > 0 && len(resp.Matches) > req.Limit {
		resp.Matches = resp.Matches[:req.Limit]
	}
	return resp
}

// adoptState installs a new hash state pushed by the HAgent after a rehash
// this IAgent is involved in, hands off every entry it no longer owns to
// the now-responsible IAgents, and marks itself dead if its leaf is gone.
func (b *IAgentBehavior) adoptState(ctx *platform.Context, req AdoptStateReq) (Ack, error) {
	st, err := FromDTO(req.State)
	if err != nil {
		return Ack{}, fmt.Errorf("IAgent %s: adopt: %w", ctx.Self(), err)
	}
	b.mu.Lock()
	if st.Version() <= b.state.Load().Version() {
		version := b.state.Load().Version()
		b.mu.Unlock()
		// A duplicate takeover notification (the HAgent retries when an
		// earlier ack was lost) must still activate the checkpoint.
		if req.PromoteCheckpointOf != "" {
			b.activateCheckpoint(ctx, req.PromoteCheckpointOf)
		}
		return Ack{Status: StatusIgnored, HashVersion: version}, nil
	}
	b.state.Store(st)
	b.settled = ctx.Clock().Now()
	// The rehash may have moved the checkpoint buddy; resync from scratch.
	b.ckFull = true
	stillPresent := st.Tree.Contains(string(ctx.Self()))
	b.mu.Unlock()

	if req.PromoteCheckpointOf != "" {
		b.activateCheckpoint(ctx, req.PromoteCheckpointOf)
	}

	// Group entries this IAgent no longer owns by their new owner. The
	// snapshot is overlaid with residence-resolved addresses first, so a
	// receiver that never learns a binding still starts from the group's
	// current node, not a stale per-member entry.
	entries := b.Table.Snapshot()
	b.Residence.OverlayResolved(entries)
	moved := make(map[ids.AgentID]*HandoffReq)
	for agent, node := range entries {
		owner, _, err := st.OwnerOf(agent)
		if err != nil || owner == ctx.Self() {
			continue
		}
		h := moved[owner]
		if h == nil {
			h = &HandoffReq{
				Entries:    make(map[ids.AgentID]platform.NodeID),
				Load:       make(map[ids.AgentID]uint64),
				Pending:    make(map[ids.AgentID][]Deposited),
				Bindings:   make(map[ids.AgentID]ids.ResidenceID),
				Residences: make(map[ids.ResidenceID]platform.NodeID),
				Caps:       make(map[ids.AgentID][]string),
			}
			moved[owner] = h
		}
		h.Entries[agent] = node
		h.Load[agent] = b.loads.Load(agent)
		if r, bound := b.Residence.BindingOf(agent); bound {
			h.Bindings[agent] = r
			h.Residences[r] = node
		}
		if caps := b.Caps.CapsOf(agent); len(caps) > 0 {
			h.Caps[agent] = caps
		}
		b.mu.Lock()
		if msgs := b.Pending[agent]; len(msgs) > 0 {
			h.Pending[agent] = msgs
		}
		b.mu.Unlock()
	}
	for owner, h := range moved {
		ownerNode, ok := st.Locations[owner]
		if !ok {
			return Ack{}, fmt.Errorf("IAgent %s: no location for new owner %s", ctx.Self(), owner)
		}
		if err := b.callWithRetry(ctx, ownerNode, owner, KindHandoff, h, nil); err != nil {
			return Ack{}, fmt.Errorf("IAgent %s: handoff to %s: %w", ctx.Self(), owner, err)
		}
		b.mu.Lock()
		for agent := range h.Entries {
			delete(b.Pending, agent)
		}
		b.mu.Unlock()
		for agent := range h.Entries {
			// Best effort: the full section persisted below is the durable
			// authority for the post-handoff table, and a resurrected entry
			// would only draw not-responsible answers anyway.
			walAppendBestEffort(ctx, snapshot.OpDelete, agent, "", st.Version())
			b.Table.Delete(agent)
			b.Residence.Unbind(agent)
			b.Caps.Remove(agent)
			b.loads.Remove(agent)
		}
		b.metTable.Set(int64(b.Table.Len()))
	}
	b.persistSelf(ctx)

	if !stillPresent {
		b.mu.Lock()
		b.dead = true
		b.mu.Unlock()
		ctx.Emit("iagent.retire", fmt.Sprintf("leaf gone at v%d; handed off %d owners", st.Version(), len(moved)))
	} else if len(moved) > 0 {
		ctx.Emit("iagent.adopt", fmt.Sprintf("v%d; handed off to %d owners", st.Version(), len(moved)))
	}
	// A rehash resets the rate statistics so the fresh assignment is
	// measured from scratch.
	b.est.Reset()
	return Ack{Status: StatusOK, HashVersion: st.Version()}, nil
}

// handoff merges entries transferred from another IAgent during rehashing.
// Adopted entries are WAL-logged before the handoff is acknowledged — once
// the sender deletes its copies, this log is their only durable home until
// the next full section. A failed append fails the request and the sender
// retries the (idempotent) handoff.
func (b *IAgentBehavior) handoff(ctx *platform.Context, req HandoffReq) (Ack, error) {
	version := b.state.Load().Version()
	for agent, node := range req.Entries {
		if err := walAppend(ctx, snapshot.OpPut, agent, node, version); err != nil {
			return Ack{}, err
		}
	}
	if len(req.Bindings) > 0 {
		b.Residence.Adopt(req.Bindings, req.Residences)
	}
	if len(req.Caps) > 0 {
		b.Caps.Adopt(req.Caps)
		for agent, caps := range req.Caps {
			b.persistCapDelta(ctx, agent, caps)
		}
	}
	b.mu.Lock()
	for agent := range req.Entries {
		b.ckDirty[agent] = true
		delete(b.ckRemoved, agent)
	}
	if len(req.Pending) > 0 && b.Pending == nil {
		b.Pending = make(map[ids.AgentID][]Deposited)
	}
	for agent, msgs := range req.Pending {
		b.Pending[agent] = append(b.Pending[agent], msgs...)
	}
	b.mu.Unlock()
	for agent, node := range req.Entries {
		b.Table.Put(agent, node)
		for i := uint64(0); i < req.Load[agent]; i++ {
			b.loads.Add(agent)
		}
	}
	b.metTable.Set(int64(b.Table.Len()))
	return Ack{Status: StatusOK, HashVersion: b.state.Load().Version()}, nil
}

// callWithRetry retries transient call failures a few times; handoffs must
// not be lost to a single dropped message.
func (b *IAgentBehavior) callWithRetry(ctx *platform.Context, at platform.NodeID, agent ids.AgentID, kind string, req, resp any) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		cctx, cancel := context.WithTimeout(context.Background(), b.Cfg.CallTimeout)
		err = ctx.Call(cctx, at, agent, kind, req, resp)
		cancel()
		if err == nil {
			return nil
		}
	}
	return err
}

// Run implements platform.Runner: the IAgent's autonomous loop compares its
// request rate against the thresholds every CheckInterval and asks the
// HAgent for a split or a merge (paper §4). It also disposes the agent once
// a merge has removed its leaf.
func (b *IAgentBehavior) Run(ctx *platform.Context) error {
	if err := b.ensureRuntime(ctx); err != nil {
		return err
	}
	lastPlacement := ctx.Clock().Now()
	lastBeat := time.Time{} // zero: beat on the first tick
	lastCk := ctx.Clock().Now()
	for {
		if !ctx.Sleep(b.Cfg.CheckInterval) {
			return nil // agent stopped
		}
		if b.Cfg.PlacementEnabled && ctx.Clock().Now().Sub(lastPlacement) >= b.Cfg.PlacementInterval {
			lastPlacement = ctx.Clock().Now()
			moved, err := b.maybeRelocate(ctx)
			if err != nil {
				continue // transient; try again next round
			}
			if moved {
				return nil // Run resumes at the destination node
			}
		}
		b.mu.Lock()
		dead := b.dead
		settled := b.settled
		b.mu.Unlock()
		version := b.state.Load().Version()

		if dead {
			ctx.Dispose()
			return nil
		}

		// Crash tolerance: heartbeat the HAgent and checkpoint the table to
		// the sibling leaf. Cadence granularity is CheckInterval — intervals
		// shorter than that degrade to once per tick.
		if b.Cfg.failoverEnabled() {
			now := ctx.Clock().Now()
			if now.Sub(lastBeat) >= b.Cfg.HeartbeatInterval {
				lastBeat = now
				b.sendHeartbeat(ctx)
			}
			if now.Sub(lastCk) >= b.Cfg.checkpointEvery() {
				lastCk = now
				b.pushCheckpoint(ctx)
			}
		}

		rate := b.est.Rate()
		switch {
		case rate > b.Cfg.TMax:
			req := RequestSplitReq{
				IAgent:      ctx.Self(),
				HashVersion: version,
				Rate:        rate,
			}
			if b.Cfg.LoadStatsPrefixBits > 0 {
				req.PerGroup = stats.GroupLoads(b.loads.Snapshot(), b.Cfg.LoadStatsPrefixBits)
			} else {
				req.PerAgent = b.loads.Snapshot()
			}
			// A failed or declined request is retried naturally at the
			// next tick; the rate condition persists while overloaded.
			b.requestRehash(ctx, KindRequestSplit, req)
		case rate < b.Cfg.TMin && ctx.Clock().Now().Sub(settled) >= b.Cfg.MergeGrace:
			req := RequestMergeReq{IAgent: ctx.Self(), HashVersion: version, Rate: rate}
			b.requestRehash(ctx, KindRequestMerge, req)
		}
	}
}

// requestRehash sends a split/merge request to the primary HAgent, falling
// back to the configured replicas. A replica that has not been promoted
// answers Standby — keep walking; only a primary's answer counts.
func (b *IAgentBehavior) requestRehash(ctx *platform.Context, kind string, req any) {
	for _, src := range b.Cfg.hagentSources() {
		var resp RehashResp
		cctx, cancel := context.WithTimeout(context.Background(), b.Cfg.CallTimeout)
		err := ctx.Call(cctx, src.Node, src.Agent, kind, req, &resp)
		cancel()
		if err == nil && !resp.Standby {
			return
		}
	}
}
