package main

import (
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"agentloc/internal/metrics/metricstest"
	"agentloc/internal/platform"
	"agentloc/internal/trace"
	"agentloc/internal/transport"
)

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("node-1=127.0.0.1:7101,node-2=host:7102")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["node-1"] != "127.0.0.1:7101" || got["node-2"] != "host:7102" {
		t.Errorf("parsePeers = %v", got)
	}
	if got, err := parsePeers(""); err != nil || len(got) != 0 {
		t.Errorf("empty peers = %v, %v", got, err)
	}
	for _, bad := range []string{"oops", "=addr", "id=", "a=b,oops"} {
		if _, err := parsePeers(bad); err == nil {
			t.Errorf("parsePeers(%q) accepted", bad)
		}
	}
}

func TestPlacementNodes(t *testing.T) {
	dir := map[transport.Addr]string{"n1": "a", "n2": "b"}
	got := placementNodes("self", dir)
	if len(got) != 3 || got[0] != "self" {
		t.Errorf("placementNodes = %v", got)
	}
	seen := map[platform.NodeID]bool{}
	for _, n := range got {
		seen[n] = true
	}
	if !seen["n1"] || !seen["n2"] {
		t.Errorf("placementNodes missing peers: %v", got)
	}
}

// syncBuffer lets the test read run's output while run is still writing.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestMetricsEndpoint boots a full single-node deployment with
// -metrics-addr, scrapes the HTTP endpoints it announces, and shuts it
// down via the stop channel.
func TestMetricsEndpoint(t *testing.T) {
	stop := make(chan struct{})
	var out syncBuffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-id", "node-0",
			"-listen", "127.0.0.1:0",
			"-bootstrap",
			"-metrics-addr", "127.0.0.1:0",
		}, stop, &out)
	}()

	// The node prints its metrics URL once the listener is up.
	urlRe := regexp.MustCompile(`metrics on (http://[^\s]+)/metrics`)
	var base string
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m := urlRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("run exited early: %v\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if base == "" {
		t.Fatalf("metrics URL never announced:\n%s", out.String())
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		if _, err := io.Copy(&b, resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d\n%s", path, resp.StatusCode, b.String())
		}
		return b.String()
	}

	text := get("/metrics")
	if n := metricstest.ValidateText(t, text); n == 0 {
		t.Fatalf("empty exposition:\n%s", text)
	}
	// Bootstrap hosts LHAgent + HAgent + iagent-1.
	if !strings.Contains(text, `agentloc_platform_agents_hosted{node="node-0"} 3`) {
		t.Errorf("hosted gauge wrong or missing:\n%s", text)
	}

	var health struct {
		Status string `json:"status"`
		Node   string `json:"node"`
		Agents int    `json:"agents"`
	}
	if err := json.Unmarshal([]byte(get("/healthz")), &health); err != nil {
		t.Fatalf("healthz not JSON: %v", err)
	}
	if health.Status != "ok" || health.Node != "node-0" || health.Agents != 3 {
		t.Errorf("healthz = %+v", health)
	}

	// The tracing surface rides the same mux: /trace serves the node's
	// span recorder, /events its decision log, /debug/pprof/ the profiler.
	var dump trace.Dump
	if err := json.Unmarshal([]byte(get("/trace")), &dump); err != nil {
		t.Fatalf("/trace not a span dump: %v", err)
	}
	if dump.Node != "node-0" {
		t.Errorf("/trace node = %q, want node-0", dump.Node)
	}
	var events []trace.Event
	if err := json.Unmarshal([]byte(get("/events")), &events); err != nil {
		t.Fatalf("/events not an event list: %v", err)
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("node did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("missing shutdown notice:\n%s", out.String())
	}
}

func TestRunValidatesFlags(t *testing.T) {
	stop := make(chan struct{})
	close(stop)
	if err := run([]string{}, stop, io.Discard); err == nil {
		t.Error("missing -id accepted")
	}
	if err := run([]string{"-id", "x", "-peers", "broken"}, stop, io.Discard); err == nil {
		t.Error("broken peers accepted")
	}
	// Neither -bootstrap nor -hagent-node.
	if err := run([]string{"-id", "x", "-listen", "127.0.0.1:0"}, stop, io.Discard); err == nil {
		t.Error("missing hagent designation accepted")
	}
}

// TestColdStartRecovery boots a durable bootstrap node, shuts it down (the
// persister writes a final full snapshot), then boots a second process over
// the same data directory and checks it rebuilds the HAgent and IAgent from
// disk instead of rebootstrapping.
func TestColdStartRecovery(t *testing.T) {
	dir := t.TempDir()

	boot := func(waitFor string) string {
		t.Helper()
		stop := make(chan struct{})
		var out syncBuffer
		done := make(chan error, 1)
		go func() {
			done <- run([]string{
				"-id", "node-0",
				"-listen", "127.0.0.1:0",
				"-bootstrap",
				"-data-dir", dir,
			}, stop, &out)
		}()
		deadline := time.Now().Add(10 * time.Second)
		for !strings.Contains(out.String(), waitFor) {
			if time.Now().After(deadline) {
				t.Fatalf("%q never printed:\n%s", waitFor, out.String())
			}
			select {
			case err := <-done:
				t.Fatalf("run exited early: %v\n%s", err, out.String())
			case <-time.After(10 * time.Millisecond):
			}
		}
		close(stop)
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatal("node did not shut down")
		}
		return out.String()
	}

	first := boot("bootstrapped the location mechanism")
	if !strings.Contains(first, "persisting to") {
		t.Fatalf("persister never started:\n%s", first)
	}

	second := boot("persisting to")
	if !strings.Contains(second, "recovered gen") {
		t.Fatalf("second boot did not recover from disk:\n%s", second)
	}
	if !strings.Contains(second, "1 HAgent(s), 1 IAgent(s)") {
		t.Fatalf("second boot recovered the wrong agents:\n%s", second)
	}
	if !strings.Contains(second, "-bootstrap ignored") {
		t.Fatalf("second boot rebootstrapped over durable state:\n%s", second)
	}
	if strings.Contains(second, "bootstrapped the location mechanism") {
		t.Fatalf("second boot rebootstrapped:\n%s", second)
	}
}
