package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"agentloc/internal/clock"
	"agentloc/internal/hashtree"
	"agentloc/internal/ids"
	"agentloc/internal/metrics"
	"agentloc/internal/platform"
	"agentloc/internal/transport"
)

// countingCaller wraps a Caller and counts Call invocations by kind, so
// tests can assert that a cached Locate really does zero RPCs.
type countingCaller struct {
	Caller
	mu    sync.Mutex
	calls map[string]int
}

func newCountingCaller(inner Caller) *countingCaller {
	return &countingCaller{Caller: inner, calls: make(map[string]int)}
}

func (c *countingCaller) Call(ctx context.Context, at platform.NodeID, agent ids.AgentID, kind string, req, resp any) error {
	c.mu.Lock()
	c.calls[kind]++
	c.mu.Unlock()
	return c.Caller.Call(ctx, at, agent, kind, req, resp)
}

func (c *countingCaller) count(kind string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[kind]
}

func (c *countingCaller) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.calls {
		n += v
	}
	return n
}

func TestLocateCacheServesWithZeroRPCs(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 2)
	ctx := testCtx(t)

	if _, err := c.service.ClientFor(c.nodes[0]).Register(ctx, "cached-agent"); err != nil {
		t.Fatal(err)
	}

	cfg := quietConfig()
	cfg.LocateCacheTTL = time.Minute
	cc := newCountingCaller(NodeCaller{N: c.nodes[1]})
	client := NewClient(cc, cfg)

	where, err := client.Locate(ctx, "cached-agent")
	if err != nil {
		t.Fatal(err)
	}
	if where != c.nodes[0].ID() {
		t.Fatalf("located at %s, want %s", where, c.nodes[0].ID())
	}
	base := cc.total()

	// Repeated locates must be answered from the cache: zero RPCs of any
	// kind, not just zero KindLocate.
	for i := 0; i < 5; i++ {
		where, err = client.Locate(ctx, "cached-agent")
		if err != nil {
			t.Fatal(err)
		}
		if where != c.nodes[0].ID() {
			t.Fatalf("cached locate = %s", where)
		}
	}
	if got := cc.total(); got != base {
		t.Fatalf("cached locates performed %d RPCs", got-base)
	}

	// Invalidation forces the next locate back to the server.
	client.InvalidateLocation("cached-agent")
	if _, err := client.Locate(ctx, "cached-agent"); err != nil {
		t.Fatal(err)
	}
	if got := cc.count(KindLocate); got != 2 {
		t.Fatalf("locate RPCs after invalidation = %d, want 2", got)
	}
}

func TestLocateCacheTTLExpiry(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 1)
	ctx := testCtx(t)

	if _, err := c.service.ClientFor(c.nodes[0]).Register(ctx, "ttl-agent"); err != nil {
		t.Fatal(err)
	}

	// The cache keeps its own clock; running it on a fake while the cluster
	// stays on the wall clock keeps the test deterministic.
	fake := clock.NewFake(time.Unix(1000, 0))
	cfg := quietConfig()
	cfg.Clock = fake
	cfg.LocateCacheTTL = time.Second
	cc := newCountingCaller(NodeCaller{N: c.nodes[0]})
	client := NewClient(cc, cfg)

	if _, err := client.Locate(ctx, "ttl-agent"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Locate(ctx, "ttl-agent"); err != nil {
		t.Fatal(err)
	}
	if got := cc.count(KindLocate); got != 1 {
		t.Fatalf("locate RPCs within TTL = %d, want 1", got)
	}

	fake.Advance(2 * time.Second)
	if _, err := client.Locate(ctx, "ttl-agent"); err != nil {
		t.Fatal(err)
	}
	if got := cc.count(KindLocate); got != 2 {
		t.Fatalf("locate RPCs after TTL expiry = %d, want 2", got)
	}
}

func TestLocateCacheFencedByHashVersionBump(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 2)
	ctx := testCtx(t)

	reg0 := c.service.ClientFor(c.nodes[0])
	if _, err := reg0.Register(ctx, "mover"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg0.Register(ctx, "bystander"); err != nil {
		t.Fatal(err)
	}

	cfg := quietConfig()
	cfg.LocateCacheTTL = time.Hour // TTL must not be what saves us here
	cc := newCountingCaller(NodeCaller{N: c.nodes[1]})
	client := NewClient(cc, cfg)

	if where, err := client.Locate(ctx, "mover"); err != nil || where != c.nodes[0].ID() {
		t.Fatalf("locate mover = %s, %v", where, err)
	}

	// The agent moves; the cached client has not heard about it and, within
	// TTL and with no version bump, is allowed to serve the stale node.
	if _, err := c.service.ClientFor(c.nodes[1]).MoveNotify(ctx, "mover", Assignment{}); err != nil {
		t.Fatal(err)
	}
	locatesBefore := cc.count(KindLocate)
	if where, err := client.Locate(ctx, "mover"); err != nil || where != c.nodes[0].ID() {
		t.Fatalf("pre-fence cached locate = %s, %v (want stale cached answer)", where, err)
	}
	if cc.count(KindLocate) != locatesBefore {
		t.Fatal("pre-fence locate was not served from cache")
	}

	// A rehash bumps the hash version. Push a version-2 state with the same
	// single leaf so responsibilities do not change — only the version does.
	st := &State{
		Ver:       2,
		Tree:      hashtree.New("iagent-1"),
		Locations: map[ids.AgentID]platform.NodeID{"iagent-1": c.nodes[0].ID()},
	}
	var ack Ack
	if err := c.nodes[0].CallAgent(ctx, c.nodes[0].ID(), "iagent-1", KindAdoptState, AdoptStateReq{State: st.DTO()}, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Status != StatusOK {
		t.Fatalf("adopt v2 status = %v", ack.Status)
	}

	// Any reply carrying the new version fences the cache — here, an
	// unrelated locate that must go to the server.
	if _, err := client.Locate(ctx, "bystander"); err != nil {
		t.Fatal(err)
	}

	// The fenced entry must not be served: the next locate goes back to the
	// server and returns the agent's true location.
	where, err := client.Locate(ctx, "mover")
	if err != nil {
		t.Fatal(err)
	}
	if where != c.nodes[1].ID() {
		t.Fatalf("post-fence locate = %s, want %s (stale cache entry served across version bump)", where, c.nodes[1].ID())
	}
}

func TestUpdateBatcherCoalescesPerPeerPerTick(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 2)
	ctx := testCtx(t)

	const agents = 8
	reg := c.service.ClientFor(c.nodes[0])
	assigns := make([]Assignment, agents)
	for i := range assigns {
		a, err := reg.Register(ctx, ids.AgentID(fmt.Sprintf("batch-agent-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		assigns[i] = a
	}

	// The batcher runs on a fake clock so the tick boundary is under test
	// control: everything enqueued before the Advance is one flush.
	fake := clock.NewFake(time.Unix(1000, 0))
	bcfg := quietConfig()
	bcfg.Clock = fake
	cc := newCountingCaller(NodeCaller{N: c.nodes[1]})
	b := NewUpdateBatcher(cc, bcfg, 50*time.Millisecond)
	defer b.Close()

	client := NewClient(NodeCaller{N: c.nodes[1]}, quietConfig()).WithBatcher(b)

	var wg sync.WaitGroup
	errs := make(chan error, agents)
	for i := 0; i < agents; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := client.MoveNotify(ctx, ids.AgentID(fmt.Sprintf("batch-agent-%d", i)), assigns[i]); err != nil {
				errs <- fmt.Errorf("move %d: %w", i, err)
			}
		}(i)
	}

	// Wait until all updates are queued and the flush loop is parked on the
	// fake clock, then release exactly one tick.
	deadline := time.Now().Add(10 * time.Second)
	for {
		b.mu.Lock()
		queued := 0
		for _, q := range b.queues {
			queued += len(q)
		}
		b.mu.Unlock()
		if queued == agents && fake.PendingWaiters() >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d updates queued", queued, agents)
		}
		time.Sleep(time.Millisecond)
	}
	fake.Advance(50 * time.Millisecond)

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := cc.count(KindUpdateBatch); got != 1 {
		t.Errorf("batch RPCs = %d, want 1 (one RPC per peer per tick)", got)
	}
	if got := cc.count(KindUpdate); got != 0 {
		t.Errorf("unbatched update RPCs = %d, want 0", got)
	}

	// Every entry was acked individually and applied: all agents now locate
	// at the mover's node.
	probe := c.service.ClientFor(c.nodes[0])
	for i := 0; i < agents; i++ {
		where, err := probe.Locate(ctx, ids.AgentID(fmt.Sprintf("batch-agent-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if where != c.nodes[1].ID() {
			t.Errorf("batch-agent-%d at %s, want %s", i, where, c.nodes[1].ID())
		}
	}
}

func TestIAgentParallelLocateAndRegister(t *testing.T) {
	// Readers and writers hammer one IAgent concurrently: locates travel the
	// sharded fast path (no mailbox) while registers and moves go through
	// the serial mailbox. Run under -race this exercises the striped table
	// and the lock-free state pointer. Nodes get a real metrics registry so
	// the fast-path counter is observable.
	net := transport.NewNetwork(transport.NetworkConfig{})
	t.Cleanup(func() { net.Close() })
	reg0 := metrics.New()
	nodes := make([]*platform.Node, 2)
	for i := range nodes {
		pcfg := platform.Config{ID: platform.NodeID(fmt.Sprintf("node-%d", i)), Link: net}
		if i == 0 {
			pcfg.Metrics = reg0
		}
		n, err := platform.NewNode(pcfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodes[i] = n
	}
	svc, err := Deploy(context.Background(), quietConfig(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	c := &testCluster{nodes: nodes, service: svc}
	ctx := testCtx(t)

	const hot = 16
	reg := c.service.ClientFor(c.nodes[0])
	for i := 0; i < hot; i++ {
		if _, err := reg.Register(ctx, ids.AgentID(fmt.Sprintf("hot-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 128)

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := c.service.ClientFor(c.nodes[r%2])
			for i := 0; i < 40; i++ {
				target := ids.AgentID(fmt.Sprintf("hot-%d", (r+i)%hot))
				if _, err := client.Locate(ctx, target); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client := c.service.ClientFor(c.nodes[w%2])
			for i := 0; i < 20; i++ {
				id := ids.AgentID(fmt.Sprintf("new-%d-%d", w, i))
				assign, err := client.Register(ctx, id)
				if err != nil {
					errs <- fmt.Errorf("writer %d register: %w", w, err)
					return
				}
				if _, err := client.MoveNotify(ctx, id, assign); err != nil {
					errs <- fmt.Errorf("writer %d move: %w", w, err)
					return
				}
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Everything registered mid-storm is locatable afterwards.
	probe := c.service.ClientFor(c.nodes[1])
	for w := 0; w < 4; w++ {
		for i := 0; i < 20; i++ {
			if _, err := probe.Locate(ctx, ids.AgentID(fmt.Sprintf("new-%d-%d", w, i))); err != nil {
				t.Fatalf("post-storm locate new-%d-%d: %v", w, i, err)
			}
		}
	}

	// The locates above must have travelled the concurrent fast path.
	fast := reg0.Counter("agentloc_platform_agent_requests_fastpath_total", "node", string(c.nodes[0].ID()))
	if fast.Value() == 0 {
		t.Error("no requests took the concurrent fast path")
	}
}

func TestLocCacheRefusesFencedPut(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	cache := newLocCache(Config{LocateCacheTTL: time.Minute, LocateCacheSize: 2}, fake, nil)

	cache.put("a", "node-x", 1)
	if node, ok := cache.get("a"); !ok || node != "node-x" {
		t.Fatalf("get = %s, %v", node, ok)
	}

	// Fencing at version 3 kills the version-1 entry and refuses any put
	// below the fence — a racing locate must not resurrect a stale answer.
	cache.fence(3)
	if _, ok := cache.get("a"); ok {
		t.Fatal("fenced entry served")
	}
	cache.put("a", "node-x", 2)
	if _, ok := cache.get("a"); ok {
		t.Fatal("below-fence put accepted")
	}
	cache.put("a", "node-y", 3)
	if node, ok := cache.get("a"); !ok || node != "node-y" {
		t.Fatalf("at-fence put: get = %s, %v", node, ok)
	}

	// The size cap holds: a third distinct agent evicts rather than grows.
	cache.put("b", "node-y", 3)
	cache.put("c", "node-z", 3)
	cache.mu.Lock()
	n := len(cache.entries)
	cache.mu.Unlock()
	if n > 2 {
		t.Errorf("cache grew to %d entries, cap 2", n)
	}
}
