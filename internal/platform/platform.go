// Package platform is a from-scratch mobile-agent platform — the substitute
// for the Aglets platform the paper builds on. It provides exactly the
// primitives the location mechanism relies on:
//
//   - Nodes: execution contexts reachable over a transport.Link.
//   - Agents: units of behaviour hosted at a node, each with a serial
//     mailbox (one request at a time, with a configurable service time —
//     the serialism is what makes an overloaded agent a queueing
//     bottleneck, the effect the paper's experiments measure).
//   - Messaging: request/response calls addressed to agent@node.
//   - Mobility: an agent dispatches itself to another node; its behaviour
//     state is gob-serialized, shipped, and resumed there.
//
// Behaviours that migrate must be registered with RegisterBehavior so gob
// can reconstruct them on the receiving node.
package platform

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"agentloc/internal/clock"
	"agentloc/internal/ids"
	"agentloc/internal/metrics"
	"agentloc/internal/snapshot"
	"agentloc/internal/trace"
	"agentloc/internal/transport"
)

// NodeID names a node. It doubles as the node's transport address.
type NodeID string

// Addr returns the node's transport address.
func (n NodeID) Addr() transport.Addr { return transport.Addr(n) }

// Behavior is an agent's application logic. Implementations that migrate
// between nodes must be gob-encodable (exported fields only) and registered
// with RegisterBehavior.
type Behavior interface {
	// HandleRequest processes one request from the agent's mailbox.
	// Requests are delivered strictly one at a time per agent.
	HandleRequest(ctx *Context, kind string, payload []byte) (any, error)
}

// Runner is implemented by active agents: Run is started on a dedicated
// goroutine when the agent launches at a node (both on creation and after
// each migration). A Run that calls Context.Move must return promptly
// afterwards; the platform resumes Run on the destination node.
type Runner interface {
	Run(ctx *Context) error
}

// ConcurrentBehavior is optionally implemented by behaviours that can serve
// some requests outside the serial mailbox. When the node delivers a request
// to such a behaviour it first offers it to HandleConcurrent on the
// delivering goroutine — concurrently with the mailbox and with any other
// in-flight HandleConcurrent calls. Returning handled=false routes the
// request through the mailbox as usual.
//
// Implementations must make HandleConcurrent safe against concurrent
// HandleRequest/Run activity on the same behaviour value; only requests that
// touch nothing but concurrency-safe state (e.g. a sharded read-mostly
// table) should be handled here. This is how a read-dominated agent escapes
// the one-request-at-a-time queueing model that the plain Behavior contract
// guarantees.
type ConcurrentBehavior interface {
	Behavior
	HandleConcurrent(ctx *Context, kind string, payload []byte) (result any, handled bool, err error)
}

// RegisterBehavior registers a migrating behaviour's concrete type with
// gob. Call it once per type, typically from the package that defines the
// behaviour, before any agent of that type migrates.
func RegisterBehavior(b Behavior) {
	gob.Register(b)
}

// Platform-level errors.
var (
	// ErrAgentExists is returned when launching an agent id already hosted
	// at the node.
	ErrAgentExists = errors.New("platform: agent already hosted")
	// ErrAgentNotFound is returned when a request targets an agent the
	// node does not host. Across the wire it is detected with
	// IsAgentNotFound.
	ErrAgentNotFound = errors.New("platform: agent not found")
	// ErrNodeClosed is returned by operations on a closed node.
	ErrNodeClosed = errors.New("platform: node closed")
	// ErrNotRunner is returned by Context.Move when called outside a Run
	// goroutine.
	ErrNotRunner = errors.New("platform: Move is only available to Runner agents")
)

// agentNotFoundPrefix marks ErrAgentNotFound across the wire, where error
// identity is lost.
const agentNotFoundPrefix = "agent-not-found: "

// IsAgentNotFound reports whether an error (possibly a *transport.
// RemoteError from another node) indicates the target agent was not at the
// node.
func IsAgentNotFound(err error) bool {
	if errors.Is(err, ErrAgentNotFound) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.HasPrefix(re.Msg, agentNotFoundPrefix)
}

// Wire message kinds handled by every node.
const (
	kindAgentRequest  = "platform.agent-request"
	kindAgentTransfer = "platform.agent-transfer"
	kindNodePing      = "platform.ping"
)

// agentRequest wraps a request addressed to an agent at the node.
type agentRequest struct {
	Agent   ids.AgentID
	From    ids.AgentID // requesting agent, if any
	Kind    string
	Payload []byte
}

// agentTransfer carries a migrating agent's serialized state.
type agentTransfer struct {
	Agent         ids.AgentID
	ServiceTimeNS int64
	Behavior      behaviorBox
}

// behaviorBox wraps a Behavior so gob encodes the concrete registered type.
type behaviorBox struct {
	B Behavior
}

// Config configures a node.
type Config struct {
	// ID is the node's name and transport address.
	ID NodeID
	// Link is the transport carrying the node's traffic.
	Link transport.Link
	// Clock drives agent service times and residence timers. Defaults to
	// the real clock.
	Clock clock.Clock
	// Trace receives high-level events emitted by hosted agents through
	// Context.Emit. Nil disables tracing (the default).
	Trace *trace.Log
	// Tracer records causal spans for sampled requests flowing through the
	// node: every delivered agent request opens a server span under the
	// caller's wire context, and hosted behaviours may open finer spans via
	// Context. Nil disables span recording (the default).
	Tracer *trace.Recorder
	// Metrics receives the node's operational counters and gauges —
	// hosted-agent population, migrations, transfers — and instruments the
	// node's RPC peer. Nil disables metrics (the default).
	Metrics *metrics.Registry
	// Residence is the node's canonical residence handle: the group of
	// "everything currently hosted here", which co-resident agents may join
	// so a node migration is reported as one handle move (see
	// ids.NodeResidence and core's residence support). Defaults to
	// ids.NodeResidence(ID).
	Residence ids.ResidenceID
	// Durable is the node's snapshot/WAL store. Hosted behaviours reach it
	// through Context.Durable and append location updates before acking
	// them. Nil (the default) disables durability: the node runs purely in
	// memory, as before.
	Durable *snapshot.Store
}

// Node hosts agents and serves the platform's wire protocol.
type Node struct {
	id        NodeID
	clk       clock.Clock
	link      transport.Link
	peer      *transport.Peer
	trace     *trace.Log
	tracer    *trace.Recorder
	reg       *metrics.Registry
	residence ids.ResidenceID
	durable   *snapshot.Store

	// Handles cached off the hot paths; all are nil-safe no-ops when the
	// node has no registry.
	hostedGauge   *metrics.Gauge
	migrations    *metrics.Counter
	transfersIn   *metrics.Counter
	agentRequests *metrics.Counter
	fastRequests  *metrics.Counter

	mu     sync.Mutex
	agents map[ids.AgentID]*hosted
	closed bool
	wg     sync.WaitGroup // run goroutines
}

// NewNode creates a node and binds it to its transport address.
func NewNode(cfg Config) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("platform: empty node id")
	}
	if cfg.Link == nil {
		return nil, errors.New("platform: nil link")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Residence == "" {
		cfg.Residence = ids.NodeResidence(string(cfg.ID))
	}
	n := &Node{
		id:        cfg.ID,
		clk:       cfg.Clock,
		link:      cfg.Link,
		trace:     cfg.Trace,
		tracer:    cfg.Tracer,
		reg:       cfg.Metrics,
		residence: cfg.Residence,
		durable:   cfg.Durable,
		agents:    make(map[ids.AgentID]*hosted),
	}
	if r := cfg.Metrics; r != nil {
		r.Describe("agentloc_platform_agents_hosted", "Agents currently hosted, by node.")
		r.Describe("agentloc_platform_migrations_total", "Successful outbound agent migrations, by node.")
		r.Describe("agentloc_platform_transfers_in_total", "Agents received via transfer, by node.")
		r.Describe("agentloc_platform_agent_requests_total", "Requests delivered into agent mailboxes, by node.")
		r.Describe("agentloc_platform_agent_requests_fastpath_total", "Requests served on the concurrent fast path, bypassing the mailbox, by node.")
	}
	node := string(cfg.ID)
	n.hostedGauge = cfg.Metrics.Gauge("agentloc_platform_agents_hosted", "node", node)
	n.migrations = cfg.Metrics.Counter("agentloc_platform_migrations_total", "node", node)
	n.transfersIn = cfg.Metrics.Counter("agentloc_platform_transfers_in_total", "node", node)
	n.agentRequests = cfg.Metrics.Counter("agentloc_platform_agent_requests_total", "node", node)
	n.fastRequests = cfg.Metrics.Counter("agentloc_platform_agent_requests_fastpath_total", "node", node)
	peer, err := transport.NewPeerWithMetrics(cfg.Link, cfg.ID.Addr(), n.handle, cfg.Metrics)
	if err != nil {
		return nil, fmt.Errorf("node %s: %w", cfg.ID, err)
	}
	n.peer = peer
	return n, nil
}

// ID returns the node's name.
func (n *Node) ID() NodeID { return n.id }

// Clock returns the node's clock.
func (n *Node) Clock() clock.Clock { return n.clk }

// Residence returns the node's canonical residence handle, which hosted
// agents may join to be covered by node-level group moves.
func (n *Node) Residence() ids.ResidenceID { return n.residence }

// Trace returns the node's event log; nil when tracing is disabled.
func (n *Node) Trace() *trace.Log { return n.trace }

// Tracer returns the node's span recorder; nil (still a valid no-op sink)
// when span recording is disabled.
func (n *Node) Tracer() *trace.Recorder { return n.tracer }

// Metrics returns the node's metrics registry; nil when metrics are
// disabled. A nil registry still hands out usable no-op handles, so callers
// never need to guard.
func (n *Node) Metrics() *metrics.Registry { return n.reg }

// Durable returns the node's snapshot/WAL store; nil when the node runs
// without durability.
func (n *Node) Durable() *snapshot.Store { return n.durable }

// LaunchOption tunes an agent launch.
type LaunchOption func(*hosted)

// WithServiceTime sets the simulated per-request processing time of the
// agent's mailbox. It models the paper's real Aglets message-handling cost;
// a busy agent with non-zero service time builds a queue.
func WithServiceTime(d time.Duration) LaunchOption {
	return func(h *hosted) { h.serviceTime = d }
}

// Launch hosts a new agent at this node and, if the behaviour implements
// Runner, starts its Run goroutine.
func (n *Node) Launch(id ids.AgentID, b Behavior, opts ...LaunchOption) error {
	if id == "" {
		return errors.New("platform: empty agent id")
	}
	if b == nil {
		return errors.New("platform: nil behavior")
	}
	h := newHosted(id, b, n)
	for _, opt := range opts {
		opt(h)
	}

	// The lock is held through start() so the hosted agent is never
	// visible (to Kill/Close) before its goroutine bookkeeping is set up.
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrNodeClosed
	}
	if _, ok := n.agents[id]; ok {
		return fmt.Errorf("%w: %s at %s", ErrAgentExists, id, n.id)
	}
	n.agents[id] = h
	n.hostedGauge.Inc()
	h.start(&n.wg)
	return nil
}

// Kill stops and removes an agent, waiting for its goroutines to exit.
// Killing an absent agent is an error.
func (n *Node) Kill(id ids.AgentID) error {
	n.mu.Lock()
	h, ok := n.agents[id]
	if ok {
		delete(n.agents, id)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s at %s", ErrAgentNotFound, id, n.id)
	}
	n.hostedGauge.Dec()
	h.stopAndWait()
	return nil
}

// Agents lists the ids of the agents currently hosted.
func (n *Node) Agents() []ids.AgentID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]ids.AgentID, 0, len(n.agents))
	for id := range n.agents {
		out = append(out, id)
	}
	return out
}

// Hosts reports whether the node currently hosts the agent.
func (n *Node) Hosts(id ids.AgentID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.agents[id]
	return ok
}

// CallAgent sends a request to an agent hosted at the given node and waits
// for its response. It is the entry point for non-agent callers (clients,
// experiment drivers); agents use Context.Call.
func (n *Node) CallAgent(ctx context.Context, at NodeID, agent ids.AgentID, kind string, req, resp any) error {
	return n.callAgent(ctx, "", at, agent, kind, req, resp)
}

// callAgent implements agent-addressed calls with an optional sender id.
// The inner request body is encoded at the wire version negotiated with the
// destination, matching the codec the peer layer picks for the wrapper.
func (n *Node) callAgent(ctx context.Context, from ids.AgentID, at NodeID, agent ids.AgentID, kind string, req, resp any) error {
	payload, err := transport.EncodeV(req, transport.NegotiatedWireVersion(ctx, n.link, at.Addr()))
	if err != nil {
		return fmt.Errorf("call %s@%s %s: encode: %w", agent, at, kind, err)
	}
	wrapped := agentRequest{Agent: agent, From: from, Kind: kind, Payload: payload}
	var raw rawResponse
	if err := n.peer.Call(ctx, at.Addr(), kindAgentRequest, &wrapped, &raw); err != nil {
		return err
	}
	if resp != nil {
		if err := transport.Decode(raw.Payload, resp); err != nil {
			return fmt.Errorf("call %s@%s %s: decode: %w", agent, at, kind, err)
		}
	}
	return nil
}

// rawResponse carries an agent's gob-encoded response body.
type rawResponse struct {
	Payload []byte
}

// Ping checks that a node is reachable.
func (n *Node) Ping(ctx context.Context, at NodeID) error {
	return n.peer.Call(ctx, at.Addr(), kindNodePing, nil, nil)
}

// LaunchAt launches an agent on a remote node. The behaviour must be
// registered with RegisterBehavior.
func (n *Node) LaunchAt(ctx context.Context, at NodeID, id ids.AgentID, b Behavior, serviceTime time.Duration) error {
	if at == n.id {
		return n.Launch(id, b, WithServiceTime(serviceTime))
	}
	xfer := agentTransfer{Agent: id, ServiceTimeNS: int64(serviceTime), Behavior: behaviorBox{B: b}}
	return n.peer.Call(ctx, at.Addr(), kindAgentTransfer, xfer, nil)
}

// Close stops all hosted agents and releases the node's transport binding.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	agents := make([]*hosted, 0, len(n.agents))
	for _, h := range n.agents {
		agents = append(agents, h)
	}
	n.agents = make(map[ids.AgentID]*hosted)
	n.mu.Unlock()
	n.hostedGauge.Add(-int64(len(agents)))

	for _, h := range agents {
		h.stopAndWait()
	}
	n.peer.Close()
	n.wg.Wait()
	return nil
}

// Crash kills the node abruptly, for fault injection: the transport binding
// drops immediately — in-flight and future calls fail as if the process
// died — and hosted agents are torn down in the background without the
// graceful drain of Close. Crash returns as soon as the node is unreachable,
// not when the teardown finishes; crash a node mid-workload and its peers
// see failures at once.
func (n *Node) Crash() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	agents := make([]*hosted, 0, len(n.agents))
	for _, h := range n.agents {
		agents = append(agents, h)
	}
	n.agents = make(map[ids.AgentID]*hosted)
	n.mu.Unlock()
	n.hostedGauge.Add(-int64(len(agents)))

	// Unbind first: the crash is externally visible before any internal
	// goroutine has wound down.
	n.peer.Close()
	go func() {
		for _, h := range agents {
			h.stopAndWait()
		}
		n.wg.Wait()
	}()
}

// handle serves the node's wire protocol.
func (n *Node) handle(ctx context.Context, from transport.Addr, kind string, payload []byte) (any, error) {
	switch kind {
	case kindNodePing:
		return nil, nil
	case kindAgentRequest:
		var req agentRequest
		if err := transport.Decode(payload, &req); err != nil {
			return nil, fmt.Errorf("node %s: bad agent request: %w", n.id, err)
		}
		// The response body must be readable by the requester: encode it at
		// the version negotiated with that peer (0 — gob — for old builds).
		return n.deliver(trace.FromContext(ctx), req, transport.NegotiatedWireVersion(ctx, n.link, from))
	case kindAgentTransfer:
		var xfer agentTransfer
		if err := transport.Decode(payload, &xfer); err != nil {
			return nil, fmt.Errorf("node %s: bad agent transfer: %w", n.id, err)
		}
		if xfer.Behavior.B == nil {
			return nil, fmt.Errorf("node %s: transfer of %s carried no behavior", n.id, xfer.Agent)
		}
		err := n.Launch(xfer.Agent, xfer.Behavior.B, WithServiceTime(time.Duration(xfer.ServiceTimeNS)))
		if err == nil {
			n.transfersIn.Inc()
		}
		return nil, err
	default:
		return nil, fmt.Errorf("node %s: unknown message kind %q", n.id, kind)
	}
}

// deliver routes a request to the target agent — through HandleConcurrent
// when the behaviour offers it and accepts the request, otherwise into the
// serial mailbox — and waits for the result. For sampled requests a server
// span wraps the whole delivery (mailbox queueing included), and its context
// becomes the parent of whatever calls the behaviour makes.
func (n *Node) deliver(sc trace.SpanContext, req agentRequest, ver uint16) (any, error) {
	n.mu.Lock()
	h, ok := n.agents[req.Agent]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%s%s not at %s", agentNotFoundPrefix, req.Agent, n.id)
	}
	n.agentRequests.Inc()
	sp := n.tracer.StartSpan(sc, "server", req.Kind)
	if sp != nil {
		sc = sp.Context()
	}
	result, err := h.serve(sc, req)
	sp.End(err)
	if err != nil {
		return nil, err
	}
	payload, err := transport.EncodeV(result, ver)
	if err != nil {
		return nil, fmt.Errorf("agent %s: encode response: %w", req.Agent, err)
	}
	return &rawResponse{Payload: payload}, nil
}
