package forwarding

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"agentloc/internal/core"
	"agentloc/internal/ids"
	"agentloc/internal/platform"
	"agentloc/internal/transport"
)

// newCombinedCluster deploys the hash mechanism AND the forwarding scheme
// on the same nodes, the combination FallbackClient fronts.
func newCombinedCluster(t *testing.T, numNodes int) (*core.Service, *Service, []*platform.Node) {
	t.Helper()
	net := transport.NewNetwork(transport.NetworkConfig{})
	t.Cleanup(func() { net.Close() })
	nodes := make([]*platform.Node, numNodes)
	for i := range nodes {
		n, err := platform.NewNode(platform.Config{ID: platform.NodeID(fmt.Sprintf("cn-%d", i)), Link: net})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodes[i] = n
	}
	ccfg := core.DefaultConfig()
	ccfg.TMax = 1e9 // never rehash on its own
	ccfg.TMin = 0
	ccfg.IAgentServiceTime = 0
	hash, err := core.Deploy(context.Background(), ccfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := Deploy(context.Background(), DefaultConfig(), nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	return hash, fwd, nodes
}

func fallbackFor(hash *core.Service, fwd *Service, n *platform.Node) *FallbackClient {
	return NewFallbackClient(hash.ClientFor(n), fwd.ClientFor(n))
}

// TestFallbackLocateAfterHashEntryLoss is the lazy-healing path of the
// crash-tolerance design: when the hash tier has lost an agent's entry
// (here simulated by deregistering it from the hash tier only, the
// observable effect of a crash whose checkpoint missed the entry), the
// combined client still locates it through the forwarding chain.
func TestFallbackLocateAfterHashEntryLoss(t *testing.T) {
	hash, fwd, nodes := newCombinedCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	agent := ids.AgentID("traveler")
	assign, err := fallbackFor(hash, fwd, nodes[0]).Register(ctx, agent)
	if err != nil {
		t.Fatal(err)
	}
	assign, err = fallbackFor(hash, fwd, nodes[1]).MoveNotify(ctx, agent, assign)
	if err != nil {
		t.Fatal(err)
	}

	querier := fallbackFor(hash, fwd, nodes[2])
	got, err := querier.Locate(ctx, agent)
	if err != nil {
		t.Fatal(err)
	}
	if got != nodes[1].ID() {
		t.Fatalf("hash-tier locate = %s, want %s", got, nodes[1].ID())
	}

	// Drop the entry from the hash tier only; the forwarding chain
	// (cn-0 -> cn-1) survives.
	if err := hash.ClientFor(nodes[2]).Deregister(ctx, agent, assign.Hash); err != nil {
		t.Fatal(err)
	}
	if _, err := hash.ClientFor(nodes[2]).Locate(ctx, agent); !errors.Is(err, core.ErrNotRegistered) {
		t.Fatalf("hash tier still answers: %v", err)
	}

	got, err = querier.Locate(ctx, agent)
	if err != nil {
		t.Fatalf("fallback locate: %v", err)
	}
	if got != nodes[1].ID() {
		t.Errorf("fallback locate = %s, want %s", got, nodes[1].ID())
	}
}

// TestFallbackNeverRegistered: an agent unknown to both tiers fails the
// combined locate with the unchanged ErrNotRegistered.
func TestFallbackNeverRegistered(t *testing.T) {
	hash, fwd, nodes := newCombinedCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := fallbackFor(hash, fwd, nodes[1]).Locate(ctx, "ghost"); !errors.Is(err, core.ErrNotRegistered) {
		t.Errorf("locate = %v, want ErrNotRegistered", err)
	}
}

// TestFallbackDeregisterBothTiers: a full deregister clears both tiers,
// even when the hash tier has already lost the entry.
func TestFallbackDeregisterBothTiers(t *testing.T) {
	hash, fwd, nodes := newCombinedCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	agent := ids.AgentID("shortlived")
	fb := fallbackFor(hash, fwd, nodes[0])
	assign, err := fb.Register(ctx, agent)
	if err != nil {
		t.Fatal(err)
	}
	// Hash tier loses the entry first (crash analogue); the combined
	// deregister must tolerate that and still clear the forwarding tier.
	if err := hash.ClientFor(nodes[0]).Deregister(ctx, agent, assign.Hash); err != nil {
		t.Fatal(err)
	}
	if err := fb.Deregister(ctx, agent, assign); err != nil {
		t.Fatalf("combined deregister after hash-tier loss: %v", err)
	}
	if _, err := fb.Locate(ctx, agent); !errors.Is(err, core.ErrNotRegistered) {
		t.Errorf("locate after deregister = %v, want ErrNotRegistered", err)
	}
}
