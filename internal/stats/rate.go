// Package stats provides the measurement machinery the location mechanism
// depends on: sliding-window request-rate estimation (which drives the
// Tmax/Tmin rehashing thresholds of paper §4), per-agent load accounting
// (which picks even split points), and summary statistics for experiment
// reports ("statistically normalized averages", paper §5).
package stats

import (
	"sync"
	"time"

	"agentloc/internal/clock"
)

// RateEstimator estimates the recent rate of events (requests) per second
// over a sliding window. The paper requires "running statistics of the
// requests received by each IAgent"; a sliding window keeps the estimate
// responsive to workload shifts without being jumpy.
//
// RateEstimator is safe for concurrent use.
type RateEstimator struct {
	mu     sync.Mutex
	clk    clock.Clock
	window time.Duration
	events []time.Time // ring of event times inside the window, oldest first
	head   int         // index of oldest event
	count  int         // events currently stored
	total  uint64      // lifetime event count
}

// NewRateEstimator returns an estimator with the given sliding window. A
// window of one to a few seconds matches the paper's "messages per second"
// thresholds.
func NewRateEstimator(clk clock.Clock, window time.Duration) *RateEstimator {
	if window <= 0 {
		window = time.Second
	}
	return &RateEstimator{
		clk:    clk,
		window: window,
		events: make([]time.Time, 64),
	}
}

// Record notes one event at the current time.
func (r *RateEstimator) Record() {
	r.RecordN(1)
}

// RecordN notes n simultaneous events at the current time.
func (r *RateEstimator) RecordN(n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clk.Now()
	r.evict(now)
	for i := 0; i < n; i++ {
		r.push(now)
	}
	r.total += uint64(n)
}

// Rate returns the estimated events per second over the window.
func (r *RateEstimator) Rate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clk.Now()
	r.evict(now)
	return float64(r.count) / r.window.Seconds()
}

// Total returns the lifetime number of recorded events.
func (r *RateEstimator) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Reset clears the window (but not the lifetime total).
func (r *RateEstimator) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.head, r.count = 0, 0
}

// push appends an event time, growing the ring if needed. Caller holds mu.
func (r *RateEstimator) push(t time.Time) {
	if r.count == len(r.events) {
		grown := make([]time.Time, 2*len(r.events))
		for i := 0; i < r.count; i++ {
			grown[i] = r.events[(r.head+i)%len(r.events)]
		}
		r.events = grown
		r.head = 0
	}
	r.events[(r.head+r.count)%len(r.events)] = t
	r.count++
}

// evict drops events older than the window. Caller holds mu.
func (r *RateEstimator) evict(now time.Time) {
	cutoff := now.Add(-r.window)
	for r.count > 0 && r.events[r.head].Before(cutoff) {
		r.head = (r.head + 1) % len(r.events)
		r.count--
	}
}
