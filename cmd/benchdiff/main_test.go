package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name string, f file) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func fp(v float64) *float64 { return &v }

func defLimits() limits {
	return limits{maxP99: 0.15, maxHops: 0.20, maxRetryUs: 500, maxUpdateRPCs: 0.20, maxAllocs: 50, maxThroughput: 0.20}
}

func TestGatePasses(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", file{Benchmarks: []result{
		{Name: "million/cached_locate", Throughput: 1000000, AllocsPerOp: fp(2)},
		{Name: "read_path/sharded", P99Us: 5000, Throughput: 3800, AllocsPerOp: fp(1400)},
	}})
	cur := writeFile(t, dir, "cur.json", file{Benchmarks: []result{
		{Name: "million/cached_locate", Throughput: 950000, AllocsPerOp: fp(3)},
		{Name: "read_path/sharded", P99Us: 5100, Throughput: 3700, AllocsPerOp: fp(1500)},
	}})
	if err := run(base, cur, defLimits()); err != nil {
		t.Errorf("run failed on a healthy diff: %v", err)
	}
}

func TestGateCatchesAllocBudgetBreach(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", file{Benchmarks: []result{
		{Name: "million/cached_locate", Throughput: 1000000, AllocsPerOp: fp(2)},
	}})
	cur := writeFile(t, dir, "cur.json", file{Benchmarks: []result{
		{Name: "million/cached_locate", Throughput: 1000000, AllocsPerOp: fp(80)},
	}})
	err := run(base, cur, defLimits())
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Errorf("alloc budget breach not caught: %v", err)
	}
}

func TestGateExemptsLegacyHighAllocRows(t *testing.T) {
	// A row whose baseline never met the budget must not fail on it.
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", file{Benchmarks: []result{
		{Name: "read_path/serial", P99Us: 13000, Throughput: 900, AllocsPerOp: fp(1439)},
	}})
	cur := writeFile(t, dir, "cur.json", file{Benchmarks: []result{
		{Name: "read_path/serial", P99Us: 13000, Throughput: 900, AllocsPerOp: fp(1500)},
	}})
	if err := run(base, cur, defLimits()); err != nil {
		t.Errorf("legacy row failed the alloc budget it never met: %v", err)
	}
}

func TestGateCatchesThroughputRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", file{Benchmarks: []result{
		{Name: "million/locate", Throughput: 10000000},
	}})
	cur := writeFile(t, dir, "cur.json", file{Benchmarks: []result{
		{Name: "million/locate", Throughput: 6000000},
	}})
	err := run(base, cur, defLimits())
	if err == nil {
		t.Error("40% throughput drop passed the 20% gate")
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and returns
// what it printed — run's table goes straight to stdout.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- sb.String()
	}()
	fn()
	w.Close()
	return <-done
}

func TestZeroBaselineRowsRenderNAAndPassGates(t *testing.T) {
	// A baseline row with zero p99 and zero throughput (the field was never
	// measured) has no denominator: the relative gates must not engage no
	// matter how the current run moved, and the columns must read n/a
	// instead of a misleading +0.0%.
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", file{Benchmarks: []result{
		{Name: "discover/cold", P99Us: 0, Throughput: 0},
	}})
	cur := writeFile(t, dir, "cur.json", file{Benchmarks: []result{
		{Name: "discover/cold", P99Us: 90000, Throughput: 12},
	}})
	var err error
	out := captureStdout(t, func() { err = run(base, cur, defLimits()) })
	if err != nil {
		t.Errorf("zero-baseline row tripped a relative gate: %v", err)
	}
	if !strings.Contains(out, "n/a") {
		t.Errorf("zero-baseline columns did not render n/a:\n%s", out)
	}
	if strings.Contains(out, "+0.0%") {
		t.Errorf("zero-baseline delta rendered as +0.0%%:\n%s", out)
	}
}

func TestAllocGateSkipsMissingBaselineField(t *testing.T) {
	// A baseline row without allocs_per_op must neither fail the budget nor
	// hide the current measurement.
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", file{Benchmarks: []result{
		{Name: "million/cached_locate", Throughput: 1000000},
	}})
	cur := writeFile(t, dir, "cur.json", file{Benchmarks: []result{
		{Name: "million/cached_locate", Throughput: 1000000, AllocsPerOp: fp(80)},
	}})
	var err error
	out := captureStdout(t, func() { err = run(base, cur, defLimits()) })
	if err != nil {
		t.Errorf("missing baseline allocs field tripped the budget: %v", err)
	}
	if !strings.Contains(out, "80.0") {
		t.Errorf("current allocs/op not reported for an ungated row:\n%s", out)
	}
}

func TestGateCatchesMissingRow(t *testing.T) {
	dir := t.TempDir()
	base := writeFile(t, dir, "base.json", file{Benchmarks: []result{
		{Name: "million/table_fill", Throughput: 1000000},
		{Name: "million/locate", Throughput: 1000000},
	}})
	cur := writeFile(t, dir, "cur.json", file{Benchmarks: []result{
		{Name: "million/table_fill", Throughput: 1000000},
	}})
	if err := run(base, cur, defLimits()); err == nil {
		t.Error("missing row passed the gate")
	}
}
