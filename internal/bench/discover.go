// Discovery benchmark: closed-loop capability queries against a deployed
// cluster. Every Discover is a scatter-gather over the responsible leaves,
// so this lane watches the cost of the capability tier itself — the leaf
// enumeration, the bounded fan-out, and the per-leaf index match — rather
// than the single-IAgent hot path the read bench measures. Two variants:
//
//   - scatter: unbounded queries for one tag — the worst-case result set.
//   - near:    queries with a locality preference and a small limit — the
//     "find me a nearby worker" shape discovery exists for.
//
// benchdiff gates the lane via BENCH_discover.json.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"agentloc/internal/core"
	"agentloc/internal/ids"
	"agentloc/internal/platform"
	"agentloc/internal/transport"
)

// DiscoverConfig shapes one discovery run. Zero fields select the defaults
// noted on each.
type DiscoverConfig struct {
	// Nodes is the platform node count (default 4); agents and workers are
	// spread round-robin across them.
	Nodes int
	// Agents is the registered (and capability-advertising) population
	// (default 512).
	Agents int
	// Tags is the size of the capability vocabulary (default 32).
	Tags int
	// TagsPerAgent is how many tags each agent advertises (default 3).
	TagsPerAgent int
	// Workers is the closed-loop worker count (default 8).
	Workers int
	// Limit caps the matches per query in the near variant (default 8).
	Limit int
	// Seed makes the query draws reproducible (default 1).
	Seed int64
}

func (c *DiscoverConfig) fillDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.Agents <= 0 {
		c.Agents = 512
	}
	if c.Tags <= 0 {
		c.Tags = 32
	}
	if c.TagsPerAgent <= 0 {
		c.TagsPerAgent = 3
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Limit <= 0 {
		c.Limit = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// DiscoverHarness is a deployed cluster with a capability-tagged population,
// ready to be queried. Create with NewDiscoverHarness, drive with Run
// (repeatable), release with Close.
type DiscoverHarness struct {
	cfg     DiscoverConfig
	net     *transport.Network
	nodes   []*platform.Node
	service *core.Service
	clients []*core.Client
}

// tagName returns the t-th vocabulary tag.
func tagName(t int) string { return fmt.Sprintf("cap-%02d", t) }

// NewDiscoverHarness deploys the cluster and registers the population with
// overlapping capability sets: agent i advertises tags i, i+1, ...
// (mod Tags), so every tag is shared by roughly Agents·TagsPerAgent/Tags
// agents and two-tag AND queries have non-trivial intersections. Rehash
// thresholds are pushed out of reach, as in the other lanes, so the
// capability tier itself is what gets measured.
func NewDiscoverHarness(cfg DiscoverConfig) (*DiscoverHarness, error) {
	cfg.fillDefaults()
	net := transport.NewNetwork(transport.NetworkConfig{})
	nodes := make([]*platform.Node, cfg.Nodes)
	for i := range nodes {
		n, err := platform.NewNode(platform.Config{ID: platform.NodeID(fmt.Sprintf("node-%d", i)), Link: net})
		if err != nil {
			net.Close()
			return nil, err
		}
		nodes[i] = n
	}

	ccfg := core.DefaultConfig()
	ccfg.TMax = 1e12
	ccfg.TMin = 0
	ccfg.CheckInterval = time.Hour

	svc, err := core.Deploy(context.Background(), ccfg, nodes)
	if err != nil {
		net.Close()
		return nil, err
	}

	h := &DiscoverHarness{cfg: cfg, net: net, nodes: nodes, service: svc}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for i := 0; i < cfg.Agents; i++ {
		caps := make([]string, cfg.TagsPerAgent)
		for k := range caps {
			caps[k] = tagName((i + k) % cfg.Tags)
		}
		client := svc.ClientFor(nodes[i%len(nodes)])
		agent := ids.AgentID(fmt.Sprintf("skilled-%04d", i))
		if _, err := client.RegisterWithCapabilities(ctx, agent, caps); err != nil {
			h.Close()
			return nil, fmt.Errorf("bench: register %s: %w", agent, err)
		}
	}
	h.clients = make([]*core.Client, cfg.Workers)
	for i := range h.clients {
		h.clients[i] = svc.ClientFor(nodes[i%len(nodes)])
	}
	return h, nil
}

// Close tears the cluster down.
func (h *DiscoverHarness) Close() { h.net.Close() }

// Run drives totalOps closed-loop Discover queries and reports the
// aggregate measurements under the given result name. With near set, each
// query prefers a random node and caps its result at cfg.Limit; otherwise
// queries are unbounded single- and two-tag scatters.
func (h *DiscoverHarness) Run(name string, totalOps int, near bool) (Result, error) {
	cfg := h.cfg
	if totalOps < cfg.Workers {
		totalOps = cfg.Workers
	}
	perWorker := totalOps / cfg.Workers

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	lats := make([][]time.Duration, cfg.Workers)
	errCounts := make([]int, cfg.Workers)
	empties := make([]int, cfg.Workers)

	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			client := h.clients[w]
			lat := make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				t := rng.Intn(cfg.Tags)
				q := core.Query{Caps: []string{tagName(t)}}
				if i%2 == 1 {
					// Adjacent tags co-occur by construction, so every
					// second query is a two-tag AND with real matches.
					q.Caps = append(q.Caps, tagName((t+1)%cfg.Tags))
				}
				if near {
					q.Near = h.nodes[rng.Intn(len(h.nodes))].ID()
					q.Limit = cfg.Limit
				}
				opStart := time.Now()
				matches, err := client.Discover(ctx, q)
				lat = append(lat, time.Since(opStart))
				if err != nil {
					errCounts[w]++
				} else if len(matches) == 0 {
					empties[w]++
				}
			}
			lats[w] = lat
		}(w)
	}
	wg.Wait()

	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	errs, empty := 0, 0
	for w := range errCounts {
		errs += errCounts[w]
		empty += empties[w]
	}
	if errs == 0 && empty == len(all) {
		// Every tag has advertisers by construction; all-empty means the
		// index is broken, which must fail the lane rather than post a
		// spectacular throughput number.
		return Result{}, fmt.Errorf("bench: all %d discover queries matched nothing", empty)
	}

	ops := len(all)
	return Result{
		Name:        name,
		Workers:     cfg.Workers,
		Ops:         ops,
		Errors:      errs,
		Seconds:     elapsed.Seconds(),
		Throughput:  float64(ops) / elapsed.Seconds(),
		P50Us:       percentileMicros(all, 0.50),
		P99Us:       percentileMicros(all, 0.99),
		AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / float64(ops),
	}, nil
}
