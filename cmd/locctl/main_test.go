package main

import (
	"strings"
	"testing"
)

const sampleExposition = `# HELP agentloc_core_requests_total Requests served.
# TYPE agentloc_core_requests_total counter
agentloc_core_requests_total{op="locate"} 42
agentloc_core_requests_total{op="update"} 7
# TYPE agentloc_core_hashtree_leaves gauge
agentloc_core_hashtree_leaves 3
# TYPE agentloc_core_locate_latency_seconds histogram
agentloc_core_locate_latency_seconds_bucket{le="0.25"} 1
agentloc_core_locate_latency_seconds_bucket{le="0.5"} 3
agentloc_core_locate_latency_seconds_bucket{le="1"} 4
agentloc_core_locate_latency_seconds_bucket{le="+Inf"} 5
agentloc_core_locate_latency_seconds_sum 5.625
agentloc_core_locate_latency_seconds_count 5
# TYPE agentloc_transport_rpc_latency_seconds histogram
agentloc_transport_rpc_latency_seconds_bucket{kind="loc.locate",le="0.001"} 2
agentloc_transport_rpc_latency_seconds_bucket{kind="loc.locate",le="+Inf"} 2
agentloc_transport_rpc_latency_seconds_sum{kind="loc.locate"} 0.0005
agentloc_transport_rpc_latency_seconds_count{kind="loc.locate"} 2
`

func TestPrettyMetrics(t *testing.T) {
	var b strings.Builder
	if err := prettyMetrics(strings.NewReader(sampleExposition), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`agentloc_core_requests_total{op="locate"}`,
		"agentloc_core_hashtree_leaves",
		"agentloc_core_locate_latency_seconds",
		"count=5",
		`agentloc_transport_rpc_latency_seconds{kind="loc.locate"}`,
		"count=2",
		"mean=1.125s", // 5.625 / 5, rendered as a duration
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Histograms must be folded, not echoed raw.
	if strings.Contains(out, "_bucket") || strings.Contains(out, "le=") {
		t.Errorf("raw bucket lines leaked into output:\n%s", out)
	}
}

func TestParseSample(t *testing.T) {
	name, labels, v, ok := parseSample(`agentloc_x_total{kind="a,b",node="n"} 12`)
	if !ok || name != "agentloc_x_total" || labels != `{kind="a,b",node="n"}` || v != 12 {
		t.Errorf("parseSample = %q %q %v %v", name, labels, v, ok)
	}
	name, labels, v, ok = parseSample("agentloc_plain 1.5")
	if !ok || name != "agentloc_plain" || labels != "" || v != 1.5 {
		t.Errorf("parseSample plain = %q %q %v %v", name, labels, v, ok)
	}
	if _, _, _, ok := parseSample("garbage line with words"); ok {
		t.Error("garbage accepted")
	}
}

func TestExtractLE(t *testing.T) {
	le, rest := extractLE(`{kind="x",le="0.5"}`)
	if le != "0.5" || rest != `{kind="x"}` {
		t.Errorf("extractLE = %q %q", le, rest)
	}
	le, rest = extractLE(`{le="+Inf"}`)
	if le != "+Inf" || rest != "" {
		t.Errorf("extractLE inf = %q %q", le, rest)
	}
}

func TestMetricsCmdUsage(t *testing.T) {
	if err := metricsCmd(nil, 0, nil); err == nil {
		t.Error("missing target accepted")
	}
}
