package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"agentloc/internal/clock"
	"agentloc/internal/ids"
	"agentloc/internal/metrics"
	"agentloc/internal/platform"
	"agentloc/internal/trace"
)

// ErrBatcherClosed is returned by Do after Close.
var ErrBatcherClosed = errors.New("core: update batcher closed")

// defaultFlushTimeout bounds a flush RPC when Config.CallTimeout is unset.
// Without it a single stalled peer would wedge the flush goroutine — and
// therefore Close — forever on a deadline-less call.
const defaultFlushTimeout = 2 * time.Second

// UpdateBatcher coalesces move-update traffic: updates bound for the same
// IAgent within one flush tick travel as a single KindUpdateBatch RPC
// instead of one RPC each. Heavy TAgent churn against a hot leaf is mostly
// identical small messages to the same peer — batching them trades a bounded
// extra latency (at most one tick) for an N-fold drop in RPC count.
//
// Each entry is acked individually, so the §4.3 refresh-and-retry contract
// is untouched: a stale entry's NotResponsible ack sends only that caller
// back through its retry loop. A failed batch RPC fails every entry in it —
// callers retry exactly as they would a failed single update.
//
// Use one batcher per process (or per node) and attach it to clients with
// Client.WithBatcher; Do is safe for concurrent use.
type UpdateBatcher struct {
	caller Caller
	cfg    Config
	clk    clock.Clock
	tick   time.Duration

	batchesOK  *metrics.Counter
	batchesErr *metrics.Counter
	coal       *metrics.Counter
	tracer     *trace.Recorder

	mu     sync.Mutex
	queues map[batchKey][]pendingUpdate
	closed bool

	stop chan struct{}
	done chan struct{}
}

// batchKey identifies one destination peer: an IAgent at a node.
type batchKey struct {
	node   platform.NodeID
	iagent ids.AgentID
}

type pendingUpdate struct {
	req    UpdateReq
	result chan batchResult
}

type batchResult struct {
	ack Ack
	err error
}

// NewUpdateBatcher starts a batcher flushing every tick. A tick of zero
// selects 5ms — small enough to stay well under typical residence times,
// large enough to coalesce a busy node's worth of updates.
func NewUpdateBatcher(caller Caller, cfg Config, tick time.Duration) *UpdateBatcher {
	if tick <= 0 {
		tick = 5 * time.Millisecond
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	b := &UpdateBatcher{
		caller: caller,
		cfg:    cfg,
		clk:    clk,
		tick:   tick,
		tracer: CallerTracer(caller),
		queues: make(map[batchKey][]pendingUpdate),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if reg := CallerRegistry(caller); reg != nil {
		reg.Describe("agentloc_core_update_batches_total", "Coalesced update batch RPCs flushed, by result.")
		reg.Describe("agentloc_core_update_batched_total", "Individual updates carried inside batches.")
		b.batchesOK = reg.Counter("agentloc_core_update_batches_total", "result", "ok")
		b.batchesErr = reg.Counter("agentloc_core_update_batches_total", "result", "error")
		b.coal = reg.Counter("agentloc_core_update_batched_total")
	}
	go b.flushLoop()
	return b
}

// Do submits one update — residence binding included, batches carry full
// UpdateReqs — and blocks until its individual ack arrives with the next
// flush, the context expires, or the batcher closes.
func (b *UpdateBatcher) Do(ctx context.Context, assign Assignment, req UpdateReq) (Ack, error) {
	p := pendingUpdate{
		req:    req,
		result: make(chan batchResult, 1),
	}
	key := batchKey{node: assign.Node, iagent: assign.IAgent}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return Ack{}, ErrBatcherClosed
	}
	b.queues[key] = append(b.queues[key], p)
	b.mu.Unlock()

	select {
	case r := <-p.result:
		return r.ack, r.err
	case <-ctx.Done():
		// The flush goroutine still owns the entry and will write the
		// (now unread) buffered result; the caller just stops waiting.
		return Ack{}, ctx.Err()
	}
}

// Close stops the flush loop after a final flush; queued entries are still
// delivered.
func (b *UpdateBatcher) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		<-b.done
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.stop)
	<-b.done
}

// flushLoop drains every destination's queue once per tick, one RPC per
// destination.
func (b *UpdateBatcher) flushLoop() {
	defer close(b.done)
	for {
		select {
		case <-b.clk.After(b.tick):
			b.flush()
		case <-b.stop:
			b.flush() // deliver what is queued before exiting
			return
		}
	}
}

// flush sends one KindUpdateBatch RPC per destination with queued entries
// and fans the per-entry acks back out. Destinations flush concurrently: a
// stalled IAgent costs only its own batch a timeout instead of head-of-line
// blocking every other peer's batch for the tick.
func (b *UpdateBatcher) flush() {
	b.mu.Lock()
	queues := b.queues
	b.queues = make(map[batchKey][]pendingUpdate)
	b.mu.Unlock()

	var wg sync.WaitGroup
	for key, pending := range queues {
		wg.Add(1)
		go func(key batchKey, pending []pendingUpdate) {
			defer wg.Done()
			b.flushDest(key, pending)
		}(key, pending)
	}
	wg.Wait()
}

// flushDest sends one destination's batch RPC and fans the per-entry acks
// back out. The RPC is always deadline-bounded — CallTimeout when set, a
// small default otherwise — so a stalled peer cannot wedge the flush
// goroutine (and with it Close) forever.
func (b *UpdateBatcher) flushDest(key batchKey, pending []pendingUpdate) {
	req := UpdateBatchReq{Updates: make([]UpdateReq, len(pending))}
	for i, p := range pending {
		req.Updates[i] = p.req
	}
	var resp UpdateBatchResp
	timeout := b.cfg.CallTimeout
	if timeout <= 0 {
		timeout = defaultFlushTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	// The flush runs on the batcher's own goroutines, outside any one
	// caller's trace, so it records as a root control span.
	sp := b.tracer.StartRoot("control", "batch.flush")
	sp.Annotate("dest", string(key.iagent))
	sp.Annotate("entries", fmt.Sprintf("%d", len(pending)))
	if sp != nil {
		ctx = trace.ContextWith(ctx, sp.Context())
	}
	err := b.caller.Call(ctx, key.node, key.iagent, KindUpdateBatch, req, &resp)
	sp.End(err)
	// Only successful batch RPCs count as flushed; failures are tallied
	// separately so the ok series stays an honest delivery count.
	if err != nil {
		b.batchesErr.Inc()
	} else {
		b.batchesOK.Inc()
	}
	b.coal.Add(uint64(len(pending)))
	for i, p := range pending {
		switch {
		case err != nil:
			p.result <- batchResult{err: err}
		case i >= len(resp.Acks):
			p.result <- batchResult{err: fmt.Errorf("core: batch ack missing entry %d of %d", i, len(pending))}
		default:
			p.result <- batchResult{ack: resp.Acks[i]}
		}
	}
}

// WithBatcher routes this client's MoveNotify traffic through the batcher.
// Returns the client for chaining.
func (c *Client) WithBatcher(b *UpdateBatcher) *Client {
	c.batcher = b
	return c
}
