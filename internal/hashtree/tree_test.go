package hashtree

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"agentloc/internal/bitstr"
)

// bits is shorthand for bitstr.MustParse in tests.
func bits(s string) bitstr.Bits { return bitstr.MustParse(s) }

// lookupOwner is a test helper that fails the test on lookup error.
func lookupOwner(t *testing.T, tr *Tree, id string) string {
	t.Helper()
	// Pad the id out to 64 bits so deep trees never run out.
	padded := id + strings.Repeat("0", 64-len(id))
	owner, err := tr.Lookup(bits(padded))
	if err != nil {
		t.Fatalf("Lookup(%s): %v", id, err)
	}
	return owner
}

func TestNewSingleLeaf(t *testing.T) {
	tr := New("IA0")
	if tr.Version() != 1 {
		t.Errorf("Version = %d, want 1", tr.Version())
	}
	if tr.NumLeaves() != 1 {
		t.Errorf("NumLeaves = %d, want 1", tr.NumLeaves())
	}
	if got := lookupOwner(t, tr, "1"); got != "IA0" {
		t.Errorf("Lookup = %q, want IA0", got)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if tr.Height() != 0 {
		t.Errorf("Height = %d, want 0", tr.Height())
	}
}

func TestPaperTreeValid(t *testing.T) {
	tr := PaperTree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := tr.NumLeaves(); got != 7 {
		t.Errorf("NumLeaves = %d, want 7", got)
	}
	want := []string{"IA0", "IA1", "IA2", "IA3", "IA4", "IA5", "IA6"}
	got := tr.IAgents()
	if len(got) != len(want) {
		t.Fatalf("IAgents = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IAgents[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestFigure1Tree pins the running example's hyper-labels (the structural
// content of the paper's Figure 1).
func TestFigure1Tree(t *testing.T) {
	tr := PaperTree()
	want := map[string]string{
		"IA0": "0.0",
		"IA1": "0.1.0",
		"IA2": "0.1.1",
		"IA3": "1.00.0",
		"IA4": "1.00.1",
		"IA5": "1.1.01",
		"IA6": "1.1.1",
	}
	for _, l := range tr.Leaves() {
		if got := l.HyperLabelString(); got != want[l.IAgent] {
			t.Errorf("%s hyper-label = %s, want %s", l.IAgent, got, want[l.IAgent])
		}
	}
}

// TestFigure2Compatibility pins the compatibility rule: an id is served by
// the leaf whose hyper-label's valid bits all match (paper Figure 2). Unused
// bits — the second bit of "00" into the IA3/IA4 subtree and of "01" into
// IA5 — must not influence the mapping.
func TestFigure2Compatibility(t *testing.T) {
	tr := PaperTree()
	tests := []struct {
		id   string
		want string
	}{
		{"000", "IA0"},
		{"001", "IA0"}, // third bit irrelevant for IA0
		{"0100", "IA1"},
		{"0110", "IA2"},
		// IA3 serves 10?0..., IA4 serves 10?1...: bit 0 is consumed by the
		// root's right edge "1"; bits 1-2 by label "00" with bit 2 unused;
		// bit 3 routes.
		{"1000", "IA3"},
		{"1010", "IA3"}, // unused bit flipped — same owner
		{"1001", "IA4"},
		{"1011", "IA4"},
		// IA5 serves 110?..., IA6 serves 111...
		{"1100", "IA5"},
		{"1101", "IA5"}, // unused fourth bit flipped — same owner
		{"1110", "IA6"},
	}
	for _, tt := range tests {
		if got := lookupOwner(t, tr, tt.id); got != tt.want {
			t.Errorf("Lookup(%s) = %s, want %s", tt.id, got, tt.want)
		}
	}
}

// TestFigure3SimpleSplit reproduces the simple split of paper Figure 3:
// splitting a leaf whose hyper-label has only single-bit labels creates two
// children below it, the old IAgent keeping one and the new IAgent taking
// the other.
func TestFigure3SimpleSplit(t *testing.T) {
	tr := PaperTree()
	cands, err := tr.SplitCandidates("IA6", 4)
	if err != nil {
		t.Fatal(err)
	}
	// IA6's hyper-label is 1.1.1 — all single-bit labels, no multi-bit
	// label anywhere on its path, so the first candidate must be a simple
	// split with m=1.
	if cands[0].Kind != SplitSimple || cands[0].m != 1 {
		t.Fatalf("first candidate = %v, want simple m=1", cands[0])
	}
	nt, err := tr.ApplySplit(cands[0], "IA7")
	if err != nil {
		t.Fatal(err)
	}
	if nt.Version() != tr.Version()+1 {
		t.Errorf("version = %d, want %d", nt.Version(), tr.Version()+1)
	}
	l6, err := nt.LeafOf("IA6")
	if err != nil {
		t.Fatal(err)
	}
	if got := l6.HyperLabelString(); got != "1.1.1.0" {
		t.Errorf("IA6 hyper-label = %s, want 1.1.1.0", got)
	}
	l7, err := nt.LeafOf("IA7")
	if err != nil {
		t.Fatal(err)
	}
	if got := l7.HyperLabelString(); got != "1.1.1.1" {
		t.Errorf("IA7 hyper-label = %s, want 1.1.1.1", got)
	}
	// Mapping: ids previously at IA6 split between IA6 and IA7 on bit 3;
	// everyone else is untouched.
	if got := lookupOwner(t, nt, "1110"); got != "IA6" {
		t.Errorf("1110 → %s, want IA6", got)
	}
	if got := lookupOwner(t, nt, "1111"); got != "IA7" {
		t.Errorf("1111 → %s, want IA7", got)
	}
	if got := lookupOwner(t, nt, "000"); got != "IA0" {
		t.Errorf("000 → %s, want IA0 (untouched)", got)
	}
}

// TestSimpleSplitWithM2 exercises the m > 1 branch: the skipped bit is
// appended to the split leaf's incoming label as an unused bit.
func TestSimpleSplitWithM2(t *testing.T) {
	tr := PaperTree()
	cands, err := tr.SplitCandidates("IA6", 4)
	if err != nil {
		t.Fatal(err)
	}
	var m2 *SplitCandidate
	for i := range cands {
		if cands[i].Kind == SplitSimple && cands[i].m == 2 {
			m2 = &cands[i]
			break
		}
	}
	if m2 == nil {
		t.Fatal("no simple m=2 candidate")
	}
	nt, err := tr.ApplySplit(*m2, "IA7")
	if err != nil {
		t.Fatal(err)
	}
	l6, err := nt.LeafOf("IA6")
	if err != nil {
		t.Fatal(err)
	}
	// IA6's incoming label "1" gains one placeholder bit → "10"; then the
	// children route on the following bit.
	if got := l6.HyperLabelString(); got != "1.1.10.0" {
		t.Errorf("IA6 hyper-label = %s, want 1.1.10.0", got)
	}
	// Discrimination happens on bit 4 (0-indexed), not bit 3.
	if got := lookupOwner(t, nt, "11100"); got != "IA6" {
		t.Errorf("11100 → %s, want IA6", got)
	}
	if got := lookupOwner(t, nt, "11101"); got != "IA7" {
		t.Errorf("11101 → %s, want IA7", got)
	}
	if got := lookupOwner(t, nt, "11110"); got != "IA6" {
		t.Errorf("11110 → %s, want IA6 (bit 3 is unused)", got)
	}
}

// TestFigure4ComplexSplit reproduces the complex split of paper Figure 4:
// re-activating an unused bit of a multi-bit label on an ancestor edge
// yields the paper's asymmetric outcome — the split leaf's hyper-label
// grows by one label while the new IAgent sits higher in the tree.
func TestFigure4ComplexSplit(t *testing.T) {
	tr := PaperTree()
	cands, err := tr.SplitCandidates("IA3", 4)
	if err != nil {
		t.Fatal(err)
	}
	// IA3's hyper-label is 1.00.0; the left-most multi-bit label is "00"
	// on the ancestor edge, so the first candidate must re-activate its
	// second bit.
	c := cands[0]
	if c.Kind != SplitComplex {
		t.Fatalf("first candidate = %v, want complex", c)
	}
	if c.BitPos != 2 {
		t.Errorf("BitPos = %d, want 2", c.BitPos)
	}
	if c.NewOnBit != 1 {
		t.Errorf("NewOnBit = %d, want 1 (recorded bit is 0)", c.NewOnBit)
	}
	nt, err := tr.ApplySplit(c, "IA8")
	if err != nil {
		t.Fatal(err)
	}
	l3, err := nt.LeafOf("IA3")
	if err != nil {
		t.Fatal(err)
	}
	if got := l3.HyperLabelString(); got != "1.0.0.0" {
		t.Errorf("IA3 hyper-label = %s, want 1.0.0.0", got)
	}
	l8, err := nt.LeafOf("IA8")
	if err != nil {
		t.Fatal(err)
	}
	// The paper's asymmetry: the new IAgent has a shorter hyper-label.
	if got := l8.HyperLabelString(); got != "1.0.1" {
		t.Errorf("IA8 hyper-label = %s, want 1.0.1", got)
	}
	// Agents with the re-activated bit = 1 move to IA8 — from both IA3
	// and IA4 (the whole affected subtree).
	if got := lookupOwner(t, nt, "10100"); got != "IA8" {
		t.Errorf("10100 → %s, want IA8", got)
	}
	if got := lookupOwner(t, nt, "10101"); got != "IA8" {
		t.Errorf("10101 → %s, want IA8", got)
	}
	if got := lookupOwner(t, nt, "10000"); got != "IA3" {
		t.Errorf("10000 → %s, want IA3", got)
	}
	if got := lookupOwner(t, nt, "10010"); got != "IA4" {
		t.Errorf("10010 → %s, want IA4", got)
	}
}

// TestComplexSplitOnOwnEdge re-activates the unused bit of IA5's own
// incoming label "01".
func TestComplexSplitOnOwnEdge(t *testing.T) {
	tr := PaperTree()
	cands, err := tr.SplitCandidates("IA5", 4)
	if err != nil {
		t.Fatal(err)
	}
	c := cands[0]
	if c.Kind != SplitComplex || c.BitPos != 3 {
		t.Fatalf("first candidate = %v, want complex at bit 3", c)
	}
	if c.NewOnBit != 0 {
		t.Errorf("NewOnBit = %d, want 0 (recorded bit is 1)", c.NewOnBit)
	}
	nt, err := tr.ApplySplit(c, "IA8")
	if err != nil {
		t.Fatal(err)
	}
	l5, err := nt.LeafOf("IA5")
	if err != nil {
		t.Fatal(err)
	}
	if got := l5.HyperLabelString(); got != "1.1.0.1" {
		t.Errorf("IA5 hyper-label = %s, want 1.1.0.1", got)
	}
	l8, err := nt.LeafOf("IA8")
	if err != nil {
		t.Fatal(err)
	}
	if got := l8.HyperLabelString(); got != "1.1.0.0" {
		t.Errorf("IA8 hyper-label = %s, want 1.1.0.0", got)
	}
	if got := lookupOwner(t, nt, "1101"); got != "IA5" {
		t.Errorf("1101 → %s, want IA5", got)
	}
	if got := lookupOwner(t, nt, "1100"); got != "IA8" {
		t.Errorf("1100 → %s, want IA8", got)
	}
}

// TestFigure5SimpleMerge reproduces the simple merge of paper Figure 5:
// merging a leaf whose sibling is a leaf folds the two into one, the
// routing bit becoming an unused bit of the surviving label.
func TestFigure5SimpleMerge(t *testing.T) {
	tr := PaperTree()
	nt, res, err := tr.Merge("IA6")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != MergeSimple {
		t.Errorf("Kind = %v, want simple", res.Kind)
	}
	if len(res.Absorbers) != 1 || res.Absorbers[0] != "IA5" {
		t.Errorf("Absorbers = %v, want [IA5]", res.Absorbers)
	}
	if nt.Contains("IA6") {
		t.Error("IA6 still present after merge")
	}
	l5, err := nt.LeafOf("IA5")
	if err != nil {
		t.Fatal(err)
	}
	// Edge "1" into the collapsed parent concatenates with IA5's "01".
	if got := l5.HyperLabelString(); got != "1.101" {
		t.Errorf("IA5 hyper-label = %s, want 1.101", got)
	}
	// Everything that went to IA5 or IA6 now goes to IA5.
	for _, id := range []string{"1100", "1101", "1110", "1111"} {
		if got := lookupOwner(t, nt, id); got != "IA5" {
			t.Errorf("%s → %s, want IA5", id, got)
		}
	}
	if got := lookupOwner(t, nt, "10000"); got != "IA3" {
		t.Errorf("10000 → %s, want IA3 (untouched)", got)
	}
}

// TestFigure6ComplexMerge reproduces the complex merge of paper Figure 6:
// merging a leaf whose sibling is internal scatters its load over the
// sibling subtree's leaves.
func TestFigure6ComplexMerge(t *testing.T) {
	tr := PaperTree()
	nt, res, err := tr.Merge("IA0")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != MergeComplex {
		t.Errorf("Kind = %v, want complex", res.Kind)
	}
	if len(res.Absorbers) != 2 {
		t.Fatalf("Absorbers = %v, want [IA1 IA2]", res.Absorbers)
	}
	l1, err := nt.LeafOf("IA1")
	if err != nil {
		t.Fatal(err)
	}
	if got := l1.HyperLabelString(); got != "01.0" {
		t.Errorf("IA1 hyper-label = %s, want 01.0", got)
	}
	// Agents formerly at IA0 (prefix 00) now scatter over IA1/IA2 by
	// their third bit; the second bit became unused.
	if got := lookupOwner(t, nt, "000"); got != "IA1" {
		t.Errorf("000 → %s, want IA1", got)
	}
	if got := lookupOwner(t, nt, "001"); got != "IA2" {
		t.Errorf("001 → %s, want IA2", got)
	}
	if got := lookupOwner(t, nt, "010"); got != "IA1" {
		t.Errorf("010 → %s, want IA1", got)
	}
}

// TestMergeRootChildCollapsesIntoRootLabel checks the RootLabel mechanism:
// merging a direct child of the root pushes the surviving edge's label into
// the ignored root prefix without shifting deeper bit positions.
func TestMergeRootChildCollapsesIntoRootLabel(t *testing.T) {
	tr := New("A")
	cands, err := tr.SplitCandidates("A", 1)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := tr.ApplySplit(cands[0], "B") // A: 0, B: 1
	if err != nil {
		t.Fatal(err)
	}
	// Split B again so the root's right child is internal.
	cands, err = tr2.SplitCandidates("B", 1)
	if err != nil {
		t.Fatal(err)
	}
	tr3, err := tr2.ApplySplit(cands[0], "C") // B: 1.0, C: 1.1
	if err != nil {
		t.Fatal(err)
	}
	// Merge A: sibling subtree (B,C) moves up; its edge label "1" joins
	// the RootLabel.
	nt, res, err := tr3.Merge("A")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != MergeComplex {
		t.Errorf("Kind = %v, want complex", res.Kind)
	}
	if got := nt.RootLabel().Raw(); got != "1" {
		t.Errorf("RootLabel = %q, want 1", got)
	}
	// Bit positions must not shift: B still serves ids with bit1 = 0
	// regardless of bit0.
	if got := lookupOwner(t, nt, "00"); got != "B" {
		t.Errorf("00 → %s, want B", got)
	}
	if got := lookupOwner(t, nt, "10"); got != "B" {
		t.Errorf("10 → %s, want B", got)
	}
	if got := lookupOwner(t, nt, "01"); got != "C" {
		t.Errorf("01 → %s, want C", got)
	}
}

// TestComplexSplitOnRootLabel re-activates a bit of the RootLabel.
func TestComplexSplitOnRootLabel(t *testing.T) {
	// Build the tree from the previous test: RootLabel "1", leaves B, C.
	tr := New("A")
	c1, _ := tr.SplitCandidates("A", 1)
	tr, err := tr.ApplySplit(c1[0], "B")
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := tr.SplitCandidates("B", 1)
	tr, err = tr.ApplySplit(c2[0], "C")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err = tr.Merge("A")
	if err != nil {
		t.Fatal(err)
	}

	cands, err := tr.SplitCandidates("B", 1)
	if err != nil {
		t.Fatal(err)
	}
	c := cands[0]
	if c.Kind != SplitComplex || c.BitPos != 0 || c.pathIndex != -1 {
		t.Fatalf("first candidate = %+v, want complex on root label bit 0", c)
	}
	// Recorded root-label bit is 1, so the new IAgent takes bit 0.
	if c.NewOnBit != 0 {
		t.Errorf("NewOnBit = %d, want 0", c.NewOnBit)
	}
	nt, err := tr.ApplySplit(c, "D")
	if err != nil {
		t.Fatal(err)
	}
	if got := nt.RootLabel().Raw(); got != "" {
		t.Errorf("RootLabel = %q, want empty after re-activation", got)
	}
	if got := lookupOwner(t, nt, "00"); got != "D" {
		t.Errorf("00 → %s, want D", got)
	}
	if got := lookupOwner(t, nt, "10"); got != "B" {
		t.Errorf("10 → %s, want B", got)
	}
	if got := lookupOwner(t, nt, "11"); got != "C" {
		t.Errorf("11 → %s, want C", got)
	}
}

func TestMergeLastLeafFails(t *testing.T) {
	tr := New("A")
	if _, _, err := tr.Merge("A"); !errors.Is(err, ErrLastLeaf) {
		t.Errorf("Merge last leaf error = %v, want ErrLastLeaf", err)
	}
}

func TestMergeUnknownIAgent(t *testing.T) {
	tr := PaperTree()
	if _, _, err := tr.Merge("nope"); !errors.Is(err, ErrUnknownIAgent) {
		t.Errorf("error = %v, want ErrUnknownIAgent", err)
	}
}

func TestSplitUnknownIAgent(t *testing.T) {
	tr := PaperTree()
	if _, err := tr.SplitCandidates("nope", 2); !errors.Is(err, ErrUnknownIAgent) {
		t.Errorf("error = %v, want ErrUnknownIAgent", err)
	}
}

func TestSplitDuplicateNewIAgent(t *testing.T) {
	tr := PaperTree()
	cands, _ := tr.SplitCandidates("IA6", 1)
	if _, err := tr.ApplySplit(cands[0], "IA0"); !errors.Is(err, ErrDuplicateIAgent) {
		t.Errorf("error = %v, want ErrDuplicateIAgent", err)
	}
}

func TestSplitEmptyNewIAgent(t *testing.T) {
	tr := PaperTree()
	cands, _ := tr.SplitCandidates("IA6", 1)
	if _, err := tr.ApplySplit(cands[0], ""); err == nil {
		t.Error("expected error for empty new IAgent id")
	}
}

func TestStaleCandidateRejected(t *testing.T) {
	tr := PaperTree()
	cands, _ := tr.SplitCandidates("IA6", 1)
	nt, err := tr.ApplySplit(cands[0], "IA7")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nt.ApplySplit(cands[0], "IA9"); err == nil {
		t.Error("stale candidate accepted")
	}
}

func TestSplitDoesNotMutateOriginal(t *testing.T) {
	tr := PaperTree()
	before := tr.Describe()
	cands, _ := tr.SplitCandidates("IA3", 4)
	if _, err := tr.ApplySplit(cands[0], "IA8"); err != nil {
		t.Fatal(err)
	}
	if tr.Describe() != before {
		t.Error("ApplySplit mutated the original tree")
	}
}

func TestMergeDoesNotMutateOriginal(t *testing.T) {
	tr := PaperTree()
	before := tr.Describe()
	if _, _, err := tr.Merge("IA0"); err != nil {
		t.Fatal(err)
	}
	if tr.Describe() != before {
		t.Error("Merge mutated the original tree")
	}
}

func TestLookupIDTooShort(t *testing.T) {
	tr := PaperTree()
	if _, err := tr.Lookup(bits("1")); !errors.Is(err, ErrIDTooShort) {
		t.Errorf("error = %v, want ErrIDTooShort", err)
	}
}

func TestCandidateOrderPrefersComplex(t *testing.T) {
	tr := PaperTree()
	cands, err := tr.SplitCandidates("IA3", 3)
	if err != nil {
		t.Fatal(err)
	}
	// IA3's path has one multi-bit label ("00"), so: 1 complex candidate
	// then 3 simple candidates.
	if len(cands) != 4 {
		t.Fatalf("got %d candidates, want 4: %v", len(cands), cands)
	}
	if cands[0].Kind != SplitComplex {
		t.Errorf("cands[0] = %v, want complex", cands[0])
	}
	for i := 1; i < 4; i++ {
		if cands[i].Kind != SplitSimple || cands[i].m != i {
			t.Errorf("cands[%d] = %v, want simple m=%d", i, cands[i], i)
		}
	}
}

func TestDTORoundTrip(t *testing.T) {
	tr := PaperTree()
	data, err := tr.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != tr.Version() {
		t.Errorf("version = %d, want %d", back.Version(), tr.Version())
	}
	if back.Describe() != tr.Describe() {
		t.Errorf("round-trip mismatch:\n%s\nvs\n%s", back.Describe(), tr.Describe())
	}
}

func TestFromDTORejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		dto  DTO
	}{
		{"single child", DTO{Root: NodeDTO{LeftLabel: "0", Left: &NodeDTO{IAgent: "A"}}}},
		{"bad root label", DTO{RootLabel: "x", Root: NodeDTO{IAgent: "A"}}},
		{"bad valid bit", DTO{Root: NodeDTO{
			LeftLabel: "1", Left: &NodeDTO{IAgent: "A"},
			RightLabel: "1", Right: &NodeDTO{IAgent: "B"},
		}}},
		{"empty label", DTO{Root: NodeDTO{
			LeftLabel: "", Left: &NodeDTO{IAgent: "A"},
			RightLabel: "1", Right: &NodeDTO{IAgent: "B"},
		}}},
		{"duplicate iagent", DTO{Root: NodeDTO{
			LeftLabel: "0", Left: &NodeDTO{IAgent: "A"},
			RightLabel: "1", Right: &NodeDTO{IAgent: "A"},
		}}},
		{"empty leaf", DTO{Root: NodeDTO{IAgent: ""}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := FromDTO(tt.dto); err == nil {
				t.Error("FromDTO accepted invalid DTO")
			}
		})
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSON([]byte("{not json")); err == nil {
		t.Error("DecodeJSON accepted garbage")
	}
}

func TestRenderContainsAllIAgents(t *testing.T) {
	tr := PaperTree()
	s := tr.String()
	for _, ia := range tr.IAgents() {
		if !strings.Contains(s, ia) {
			t.Errorf("String() missing %s:\n%s", ia, s)
		}
	}
	d := tr.Describe()
	if !strings.Contains(d, "1.00.0") {
		t.Errorf("Describe() missing hyper-label:\n%s", d)
	}
	if !strings.Contains(d, "10?0*") {
		t.Errorf("Describe() missing served pattern:\n%s", d)
	}
}

func TestRenderSingleLeaf(t *testing.T) {
	tr := New("solo")
	if !strings.Contains(tr.String(), "solo") {
		t.Errorf("String() = %q", tr.String())
	}
}

func TestHeight(t *testing.T) {
	if got := PaperTree().Height(); got != 3 {
		t.Errorf("Height = %d, want 3", got)
	}
}

// randomID draws a random 64-bit id.
func randomID(r *rand.Rand) bitstr.Bits {
	return bitstr.FromUint64(r.Uint64(), 64)
}

// TestPropertyLookupTotalAndUnique checks that after arbitrary split/merge
// sequences every id maps to exactly one existing IAgent.
func TestPropertyLookupTotalAndUnique(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tr := New("IA0")
	next := 1
	for step := 0; step < 300; step++ {
		agents := tr.IAgents()
		if r.Intn(3) > 0 || len(agents) == 1 {
			// Split a random leaf with a random candidate.
			target := agents[r.Intn(len(agents))]
			cands, err := tr.SplitCandidates(target, 3)
			if err != nil {
				t.Fatal(err)
			}
			c := cands[r.Intn(len(cands))]
			nt, err := tr.ApplySplit(c, newIAgentID(&next))
			if err != nil {
				t.Fatalf("step %d split %v: %v", step, c, err)
			}
			tr = nt
		} else {
			target := agents[r.Intn(len(agents))]
			nt, _, err := tr.Merge(target)
			if err != nil {
				t.Fatalf("step %d merge %s: %v", step, target, err)
			}
			tr = nt
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d: invalid tree: %v", step, err)
		}
		present := make(map[string]bool)
		for _, ia := range tr.IAgents() {
			present[ia] = true
		}
		for i := 0; i < 20; i++ {
			id := randomID(r)
			owner, err := tr.Lookup(id)
			if err != nil {
				t.Fatalf("step %d: Lookup(%s): %v", step, id, err)
			}
			if !present[owner] {
				t.Fatalf("step %d: Lookup returned absent IAgent %q", step, owner)
			}
		}
	}
}

func newIAgentID(next *int) string {
	id := "IA" + string(rune('A'+(*next)%26)) + "-" + itoa(*next)
	*next++
	return id
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestPropertySplitLocality checks the paper's §2.1 requirement: a split
// only moves agents to the new IAgent; every id keeps its owner or moves to
// the new IAgent, and for simple splits only the split IAgent's ids move.
func TestPropertySplitLocality(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr := PaperTree()
	sample := make([]bitstr.Bits, 500)
	for i := range sample {
		sample[i] = randomID(r)
	}
	for _, target := range tr.IAgents() {
		cands, err := tr.SplitCandidates(target, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cands {
			nt, err := tr.ApplySplit(c, "NEW")
			if err != nil {
				t.Fatalf("split %v: %v", c, err)
			}
			for _, id := range sample {
				before, err := tr.Lookup(id)
				if err != nil {
					t.Fatal(err)
				}
				after, err := nt.Lookup(id)
				if err != nil {
					t.Fatal(err)
				}
				if after != before && after != "NEW" {
					t.Fatalf("split %v moved id %s from %s to %s (not the new IAgent)", c, id, before, after)
				}
				if c.Kind == SplitSimple && after == "NEW" && before != target {
					t.Fatalf("simple split %v stole id %s from %s", c, id, before)
				}
				// The discriminating bit fully determines movement to NEW.
				if after == "NEW" && id.At(c.BitPos) != c.NewOnBit {
					t.Fatalf("split %v: id %s moved to NEW but bit %d = %d, NewOnBit = %d",
						c, id, c.BitPos, id.At(c.BitPos), c.NewOnBit)
				}
			}
		}
	}
}

// TestPropertyMergeLocality checks that a merge only moves the merged
// IAgent's ids, and only into the reported absorbers.
func TestPropertyMergeLocality(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	tr := PaperTree()
	sample := make([]bitstr.Bits, 500)
	for i := range sample {
		sample[i] = randomID(r)
	}
	for _, target := range tr.IAgents() {
		nt, res, err := tr.Merge(target)
		if err != nil {
			t.Fatal(err)
		}
		absorber := make(map[string]bool)
		for _, a := range res.Absorbers {
			absorber[a] = true
		}
		for _, id := range sample {
			before, err := tr.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			after, err := nt.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			if before == target {
				if !absorber[after] {
					t.Fatalf("merge %s sent id %s to non-absorber %s", target, id, after)
				}
			} else if after != before {
				t.Fatalf("merge %s moved unrelated id %s from %s to %s", target, id, before, after)
			}
		}
	}
}

// TestPropertySplitThenMergeRestoresMapping checks that merging the IAgent
// created by a simple split restores the original mapping.
func TestPropertySplitThenMergeRestoresMapping(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr := PaperTree()
	sample := make([]bitstr.Bits, 300)
	for i := range sample {
		sample[i] = randomID(r)
	}
	for _, target := range tr.IAgents() {
		cands, err := tr.SplitCandidates(target, 1)
		if err != nil {
			t.Fatal(err)
		}
		// The last candidate is the simple m=1 split.
		c := cands[len(cands)-1]
		if c.Kind != SplitSimple {
			t.Fatalf("expected simple candidate, got %v", c)
		}
		split, err := tr.ApplySplit(c, "NEW")
		if err != nil {
			t.Fatal(err)
		}
		merged, res, err := split.Merge("NEW")
		if err != nil {
			t.Fatal(err)
		}
		if res.Kind != MergeSimple || len(res.Absorbers) != 1 || res.Absorbers[0] != target {
			t.Fatalf("merge result = %+v, want simple into %s", res, target)
		}
		for _, id := range sample {
			before, err := tr.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			after, err := merged.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			if before != after {
				t.Fatalf("split+merge of %s changed id %s: %s → %s", target, id, before, after)
			}
		}
	}
}

// TestPropertyDTORoundTripPreservesLookup round-trips random trees through
// JSON and verifies the mapping is intact.
func TestPropertyDTORoundTripPreservesLookup(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	tr := New("IA0")
	next := 1
	for step := 0; step < 40; step++ {
		agents := tr.IAgents()
		target := agents[r.Intn(len(agents))]
		cands, err := tr.SplitCandidates(target, 3)
		if err != nil {
			t.Fatal(err)
		}
		tr, err = tr.ApplySplit(cands[r.Intn(len(cands))], newIAgentID(&next))
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err := tr.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		id := randomID(r)
		a, err := tr.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("round trip changed owner of %s: %s → %s", id, a, b)
		}
	}
}

// TestPropertyLeavesCoverIDSpace checks that leaf served-patterns partition
// the id space: the hyper-label valid bits of distinct leaves must conflict
// somewhere.
func TestPropertyLeavesCoverIDSpace(t *testing.T) {
	tr := PaperTree()
	leaves := tr.Leaves()
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves); j++ {
			if !patternsConflict(tr, leaves[i], leaves[j]) {
				t.Errorf("leaves %s and %s have non-conflicting patterns %s / %s",
					leaves[i].IAgent, leaves[j].IAgent, tr.servedPattern(leaves[i]), tr.servedPattern(leaves[j]))
			}
		}
	}
}

// patternsConflict reports whether two leaves' valid-bit patterns disagree
// at some position (so no id can match both).
func patternsConflict(t *Tree, a, b Leaf) bool {
	pa, pb := t.servedPattern(a), t.servedPattern(b)
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	for i := 0; i < n; i++ {
		ca, cb := pa[i], pb[i]
		if ca == '*' || cb == '*' {
			return false
		}
		if ca != '?' && cb != '?' && ca != cb {
			return true
		}
	}
	return false
}

func TestDOTRendering(t *testing.T) {
	dot := PaperTree().DOT()
	for _, want := range []string{"digraph hashtree", "IA0", "IA6", `label="00"`, "shape=box", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// One box per IAgent.
	if got := strings.Count(dot, "shape=box"); got != 7 {
		t.Errorf("DOT has %d leaf boxes, want 7", got)
	}
}
