// Framed binary serialization for the capability index: the durable
// snapshot section and the per-mutation WAL delta share one frame format
// (magic "ACAP") with its own version, independent of the location-table
// and hash-tree formats. Two frame kinds exist:
//
//	kindFull  — the whole index: uvarint agent count, then per agent a
//	            length-prefixed id, uvarint tag count, and the tags.
//	            Applying a full frame replaces the index.
//	kindDelta — one agent's new set: length-prefixed id, uvarint tag
//	            count, tags. A zero tag count removes the agent, so a
//	            deregister's delta is one frame like any other.
//
// Decoders reject duplicate agents, oversized ids/tags, impossible counts
// and trailing bytes with wire's typed errors, and never panic on hostile
// input (see FuzzApply).
package capindex

import (
	"fmt"

	"agentloc/internal/ids"
	"agentloc/internal/wire"
)

// SerializeMagic marks a capability-index frame.
var SerializeMagic = [4]byte{'A', 'C', 'A', 'P'}

// SerializeVersion is the current capability frame format version.
const SerializeVersion uint16 = 1

// Frame kinds.
const (
	kindFull  byte = 0
	kindDelta byte = 1
)

// maxFieldLen bounds a single agent id or capability tag.
const maxFieldLen = 1 << 16

// Serialize encodes the whole index as one full frame.
func (x *Index) Serialize() []byte {
	x.mu.RLock()
	payload := wire.AppendUvarint(nil, uint64(len(x.byAgent)))
	for agent, caps := range x.byAgent {
		payload = wire.AppendString(payload, string(agent))
		payload = wire.AppendUvarint(payload, uint64(len(caps)))
		for _, c := range caps {
			payload = wire.AppendString(payload, c)
		}
	}
	x.mu.RUnlock()
	return wire.AppendFrame(nil, SerializeMagic, SerializeVersion, kindFull, payload)
}

// EncodeDelta encodes one agent's new capability set as a delta frame.
// Empty caps encode a removal.
func EncodeDelta(agent ids.AgentID, caps []string) []byte {
	norm := Normalize(caps)
	payload := wire.AppendString(nil, string(agent))
	payload = wire.AppendUvarint(payload, uint64(len(norm)))
	for _, c := range norm {
		payload = wire.AppendString(payload, c)
	}
	return wire.AppendFrame(nil, SerializeMagic, SerializeVersion, kindDelta, payload)
}

// decodeCaps reads one "uvarint count + tags" group.
func decodeCaps(d *wire.Dec) ([]string, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: capability count %d exceeds %d remaining bytes", wire.ErrCorrupt, n, d.Remaining())
	}
	if n == 0 {
		return nil, nil
	}
	caps := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		c, err := d.String(maxFieldLen)
		if err != nil {
			return nil, err
		}
		caps = append(caps, c)
	}
	return caps, nil
}

// Apply decodes one frame and applies it to the index: a full frame
// replaces the index wholesale, a delta frame sets (or, when empty,
// removes) one agent. The index is untouched on any decode error.
func Apply(data []byte, x *Index) error {
	f, n, err := wire.DecodeFrame(data, SerializeMagic, SerializeVersion)
	if err != nil {
		return err
	}
	if n != len(data) {
		return fmt.Errorf("%w: %d trailing bytes after capability frame", wire.ErrCorrupt, len(data)-n)
	}
	d := wire.NewDec(f.Payload)
	switch f.Kind {
	case kindFull:
		count, err := d.Uvarint()
		if err != nil {
			return err
		}
		if count > uint64(d.Remaining()) {
			return fmt.Errorf("%w: agent count %d exceeds %d remaining bytes", wire.ErrCorrupt, count, d.Remaining())
		}
		fresh := make(map[ids.AgentID][]string, count)
		for i := uint64(0); i < count; i++ {
			id, err := d.String(maxFieldLen)
			if err != nil {
				return err
			}
			agent := ids.AgentID(id)
			if _, dup := fresh[agent]; dup {
				return fmt.Errorf("%w: duplicate agent %q in capability frame", wire.ErrCorrupt, id)
			}
			caps, err := decodeCaps(d)
			if err != nil {
				return err
			}
			fresh[agent] = caps
		}
		if err := d.Done(); err != nil {
			return err
		}
		x.mu.Lock()
		x.byCap = make(map[string]map[ids.AgentID]struct{})
		x.byAgent = make(map[ids.AgentID][]string, len(fresh))
		for agent, caps := range fresh {
			x.setLocked(agent, Normalize(caps))
		}
		x.mu.Unlock()
		return nil
	case kindDelta:
		id, err := d.String(maxFieldLen)
		if err != nil {
			return err
		}
		caps, err := decodeCaps(d)
		if err != nil {
			return err
		}
		if err := d.Done(); err != nil {
			return err
		}
		x.Set(ids.AgentID(id), caps)
		return nil
	default:
		return fmt.Errorf("%w: unknown capability frame kind %d", wire.ErrCorrupt, f.Kind)
	}
}

// Deserialize decodes a full frame into a fresh index. Delta frames are
// rejected — recovery applies them to an existing index via Apply.
func Deserialize(data []byte) (*Index, error) {
	f, _, err := wire.DecodeFrame(data, SerializeMagic, SerializeVersion)
	if err != nil {
		return nil, err
	}
	if f.Kind != kindFull {
		return nil, fmt.Errorf("%w: expected full capability frame, got kind %d", wire.ErrCorrupt, f.Kind)
	}
	x := New()
	if err := Apply(data, x); err != nil {
		return nil, err
	}
	return x, nil
}
