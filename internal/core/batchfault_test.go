package core

import (
	"context"
	"testing"
	"time"

	"agentloc/internal/clock"
	"agentloc/internal/metrics"
	"agentloc/internal/transport"
)

// metricCaller gives a bare test caller a metrics registry so the batcher
// registers its counters where the test can read them.
type metricCaller struct {
	Caller
	reg *metrics.Registry
}

func (m metricCaller) Metrics() *metrics.Registry { return m.reg }

// TestUpdateBatcherCloseBoundedUnderStall is the ISSUE's acceptance
// scenario: with CallTimeout left at zero, a peer that accepts connections
// but never reads must not wedge the flush goroutine — and therefore
// Close — on a deadline-less RPC. Before the fix, flush used
// context.Background() whenever CallTimeout was unset and Close hung until
// the OS gave up the write (minutes, or never).
func TestUpdateBatcherCloseBoundedUnderStall(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection test; skipped in -short")
	}
	faults := []*transport.Faults{transport.NewFaults(), transport.NewFaults()}
	c, links := newTCPCluster(t, quietConfig(), 2, func(i int, tc *transport.TCPConfig) {
		tc.Faults = faults[i]
		tc.RedialBackoff = 5 * time.Millisecond
		// No WriteTimeout: the flush deadline must come from the batcher
		// itself, which is exactly what this test pins down.
	})
	ctx := testCtx(t)

	// Register from node-0 so the assignment is known before any stall.
	assign, err := c.service.ClientFor(c.nodes[0]).Register(ctx, "stall-mover")
	if err != nil {
		t.Fatal(err)
	}

	// The batcher under test lives on node-1 with CallTimeout unset.
	bcfg := quietConfig()
	bcfg.CallTimeout = 0
	reg := metrics.New()
	b := NewUpdateBatcher(metricCaller{Caller: NodeCaller{N: c.nodes[1]}, reg: reg}, bcfg, time.Millisecond)

	okC := reg.Counter("agentloc_core_update_batches_total", "result", "ok")
	errC := reg.Counter("agentloc_core_update_batches_total", "result", "error")

	// Stall every write from node-1 toward node-0's listener, then submit
	// one update. The caller gives up quickly; the flush goroutine owns the
	// entry and is now stuck mid-RPC against the stalled peer.
	faults[1].StallWritesTo(links[0].ListenAddr(), true)
	doCtx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	if _, err := b.Do(doCtx, assign, UpdateReq{Agent: "stall-mover", Node: c.nodes[1].ID()}); err == nil {
		t.Fatal("Do against a stalled peer returned no error")
	}

	start := time.Now()
	closed := make(chan struct{})
	go func() {
		b.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(15 * time.Second):
		t.Fatal("Close did not return within 15s under a stalled peer with CallTimeout == 0")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("Close took %v, want bounded by the default flush timeout", elapsed)
	}

	// The stalled batch RPC failed — only the error series may move.
	if got := okC.Value(); got != 0 {
		t.Errorf("batches_total{result=ok} = %d after a failed flush, want 0", got)
	}
	if got := errC.Value(); got == 0 {
		t.Error("batches_total{result=error} = 0 after a failed flush, want > 0")
	}
}

// TestUpdateBatcherFlushesDestinationsConcurrently pins the head-of-line
// fix: two destinations queued in the same tick flush in parallel, so a
// stalled peer costs only its own batch the timeout. Under the old
// sequential loop the healthy destination waited behind the stalled one
// whenever map order put the stalled peer first; with the fix the healthy
// ack always comes back fast.
func TestUpdateBatcherFlushesDestinationsConcurrently(t *testing.T) {
	if testing.Short() {
		t.Skip("fault-injection test; skipped in -short")
	}
	faults := []*transport.Faults{transport.NewFaults(), transport.NewFaults(), transport.NewFaults()}
	c, links := newTCPCluster(t, quietConfig(), 3, func(i int, tc *transport.TCPConfig) {
		tc.Faults = faults[i]
		tc.RedialBackoff = 5 * time.Millisecond
	})
	ctx := testCtx(t)

	assign, err := c.service.ClientFor(c.nodes[0]).Register(ctx, "hol-mover")
	if err != nil {
		t.Fatal(err)
	}

	// Fake clock: both destinations queue before the single tick releases
	// the flush, guaranteeing they share one flush() call.
	fake := clock.NewFake(time.Unix(1000, 0))
	bcfg := quietConfig()
	bcfg.Clock = fake
	bcfg.CallTimeout = 3 * time.Second
	b := NewUpdateBatcher(NodeCaller{N: c.nodes[2]}, bcfg, 50*time.Millisecond)
	defer b.Close()

	// node-0 is the stalled destination; node-1 answers immediately (there
	// is no such IAgent there, and a fast error is all concurrency needs).
	faults[2].StallWritesTo(links[0].ListenAddr(), true)

	type res struct {
		err     error
		elapsed time.Duration
	}
	stalled := make(chan res, 1)
	healthy := make(chan res, 1)
	go func() {
		start := time.Now()
		_, err := b.Do(ctx, assign, UpdateReq{Agent: "hol-mover", Node: c.nodes[2].ID()})
		stalled <- res{err, time.Since(start)}
	}()
	go func() {
		start := time.Now()
		_, err := b.Do(ctx, Assignment{IAgent: "no-such-iagent", Node: c.nodes[1].ID()},
			UpdateReq{Agent: "hol-mover", Node: c.nodes[2].ID()})
		healthy <- res{err, time.Since(start)}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for {
		b.mu.Lock()
		dests := len(b.queues)
		b.mu.Unlock()
		if dests == 2 && fake.PendingWaiters() >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/2 destinations queued", dests)
		}
		time.Sleep(time.Millisecond)
	}
	fake.Advance(50 * time.Millisecond)

	h := <-healthy
	if h.err == nil {
		t.Error("healthy-destination Do to a missing IAgent returned no error")
	}
	if h.elapsed >= bcfg.CallTimeout {
		t.Errorf("healthy destination waited %v — head-of-line blocked behind the stalled peer", h.elapsed)
	}
	s := <-stalled
	if s.err == nil {
		t.Error("stalled-destination Do returned no error")
	}
}

// TestUpdateBatcherCountsBatchesByResult pins the metrics fix: the batch
// counter is labeled by result, a failed batch RPC no longer inflates the
// ok series, and successes still count.
func TestUpdateBatcherCountsBatchesByResult(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 2)
	ctx := testCtx(t)

	assign, err := c.service.ClientFor(c.nodes[0]).Register(ctx, "metric-mover")
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	b := NewUpdateBatcher(metricCaller{Caller: NodeCaller{N: c.nodes[1]}, reg: reg}, quietConfig(), time.Millisecond)
	defer b.Close()
	okC := reg.Counter("agentloc_core_update_batches_total", "result", "ok")
	errC := reg.Counter("agentloc_core_update_batches_total", "result", "error")

	ack, err := b.Do(ctx, assign, UpdateReq{Agent: "metric-mover", Node: c.nodes[1].ID()})
	if err != nil || ack.Status != StatusOK {
		t.Fatalf("successful batch: ack %v, err %v", ack.Status, err)
	}
	if got := okC.Value(); got != 1 {
		t.Errorf("batches_total{result=ok} = %d after one delivered batch, want 1", got)
	}
	if got := errC.Value(); got != 0 {
		t.Errorf("batches_total{result=error} = %d after one delivered batch, want 0", got)
	}

	// A batch whose RPC fails (no such destination agent) must land in the
	// error series and leave ok untouched.
	if _, err := b.Do(ctx, Assignment{IAgent: "ghost-iagent", Node: c.nodes[0].ID()},
		UpdateReq{Agent: "metric-mover", Node: c.nodes[1].ID()}); err == nil {
		t.Fatal("batch to a missing IAgent returned no error")
	}
	if got := okC.Value(); got != 1 {
		t.Errorf("batches_total{result=ok} = %d after a failed batch, want still 1", got)
	}
	if got := errC.Value(); got != 1 {
		t.Errorf("batches_total{result=error} = %d after a failed batch, want 1", got)
	}
}
