package hashtree

import (
	"errors"
	"reflect"
	"testing"
)

// SiblingLeaves must predict exactly which IAgents would absorb a leaf on a
// merge — that is the property the checkpointing extension builds on.
func TestSiblingLeavesMatchMergeAbsorbers(t *testing.T) {
	tree := PaperTree()
	for _, leaf := range tree.Leaves() {
		sibs, err := tree.SiblingLeaves(leaf.IAgent)
		if err != nil {
			t.Fatalf("SiblingLeaves(%s): %v", leaf.IAgent, err)
		}
		_, res, err := tree.Merge(leaf.IAgent)
		if err != nil {
			t.Fatalf("Merge(%s): %v", leaf.IAgent, err)
		}
		if !reflect.DeepEqual(sibs, res.Absorbers) {
			t.Errorf("SiblingLeaves(%s) = %v, Merge absorbers = %v", leaf.IAgent, sibs, res.Absorbers)
		}
	}
}

func TestSiblingLeavesSingleLeaf(t *testing.T) {
	tree := New("only")
	if _, err := tree.SiblingLeaves("only"); !errors.Is(err, ErrLastLeaf) {
		t.Errorf("SiblingLeaves on single leaf = %v, want ErrLastLeaf", err)
	}
	if _, err := tree.SiblingLeaves("ghost"); err == nil {
		t.Error("SiblingLeaves of absent IAgent succeeded")
	}
}
