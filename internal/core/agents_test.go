package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"agentloc/internal/hashtree"
	"agentloc/internal/ids"
	"agentloc/internal/platform"
	"agentloc/internal/trace"
	"agentloc/internal/transport"
)

// TestIAgentUnknownKind exercises the behaviour-level error paths directly
// through a single-node platform.
func TestIAgentUnknownKind(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 1)
	ctx := testCtx(t)
	err := c.nodes[0].CallAgent(ctx, c.nodes[0].ID(), "iagent-1", "bogus.kind", nil, nil)
	var re *transport.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("error = %v, want *RemoteError", err)
	}
	if !strings.Contains(re.Msg, "unknown request kind") {
		t.Errorf("Msg = %q", re.Msg)
	}
}

func TestHAgentUnknownKind(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 1)
	ctx := testCtx(t)
	cfg := c.service.Config()
	err := c.nodes[0].CallAgent(ctx, cfg.HAgentNode, cfg.HAgent, "bogus.kind", nil, nil)
	if err == nil {
		t.Error("unknown kind accepted by HAgent")
	}
}

func TestLHAgentUnknownKind(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 1)
	ctx := testCtx(t)
	err := c.nodes[0].CallAgent(ctx, c.nodes[0].ID(), LHAgentID(c.nodes[0].ID()), "bogus.kind", nil, nil)
	if err == nil {
		t.Error("unknown kind accepted by LHAgent")
	}
}

func TestGetHashUnchangedSemantics(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 1)
	ctx := testCtx(t)
	cfg := c.service.Config()

	var resp GetHashResp
	// Version 1 is current → IfNewerThan 1 reports unchanged.
	err := c.nodes[0].CallAgent(ctx, cfg.HAgentNode, cfg.HAgent, KindGetHash, GetHashReq{IfNewerThan: 1}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Unchanged {
		t.Error("IfNewerThan=current did not report unchanged")
	}
	// IfNewerThan 0 returns the state. A fresh response struct matters:
	// gob omits zero-valued fields, so decoding into a reused struct
	// would leave the previous Unchanged=true in place.
	var resp2 GetHashResp
	err = c.nodes[0].CallAgent(ctx, cfg.HAgentNode, cfg.HAgent, KindGetHash, GetHashReq{}, &resp2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Unchanged {
		t.Error("fresh read reported unchanged")
	}
	st, err := FromDTO(resp2.State)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ver != 1 || st.Tree.NumLeaves() != 1 {
		t.Errorf("state = v%d with %d leaves", st.Ver, st.Tree.NumLeaves())
	}
}

func TestIAgentAdoptStateIgnoresStale(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 1)
	ctx := testCtx(t)

	// Push the IAgent's own current state (same version): must be ignored.
	st := &State{
		Ver:       1,
		Tree:      hashtree.New("iagent-1"),
		Locations: map[ids.AgentID]platform.NodeID{"iagent-1": c.nodes[0].ID()},
	}
	var ack Ack
	err := c.nodes[0].CallAgent(ctx, c.nodes[0].ID(), "iagent-1", KindAdoptState, AdoptStateReq{State: st.DTO()}, &ack)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status != StatusIgnored {
		t.Errorf("stale adopt status = %v, want ignored", ack.Status)
	}
}

func TestIAgentHandoffCarriesLoad(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 1)
	ctx := testCtx(t)

	// Hand entries straight to the IAgent; they must become locatable.
	req := HandoffReq{
		Entries: map[ids.AgentID]platform.NodeID{"adoptee": c.nodes[0].ID()},
		Load:    map[ids.AgentID]uint64{"adoptee": 7},
	}
	var ack Ack
	err := c.nodes[0].CallAgent(ctx, c.nodes[0].ID(), "iagent-1", KindHandoff, req, &ack)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status != StatusOK {
		t.Fatalf("handoff status = %v", ack.Status)
	}
	where, err := c.service.ClientFor(c.nodes[0]).Locate(ctx, "adoptee")
	if err != nil {
		t.Fatal(err)
	}
	if where != c.nodes[0].ID() {
		t.Errorf("adoptee at %s", where)
	}
}

func TestIAgentRuntimeInitFailure(t *testing.T) {
	// An IAgent launched with a corrupt state snapshot must fail requests
	// with a clear error instead of panicking.
	net := transport.NewNetwork(transport.NetworkConfig{})
	t.Cleanup(func() { net.Close() })
	n, err := platform.NewNode(platform.Config{ID: "solo", Link: net})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })

	bad := &IAgentBehavior{Cfg: quietConfig(), StateSnapshot: StateDTO{}} // no tree
	if err := n.Launch("broken-iagent", bad); err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	err = n.CallAgent(ctx, "solo", "broken-iagent", KindLocate, LocateReq{Agent: "x"}, nil)
	if err == nil {
		t.Error("request against broken IAgent succeeded")
	}
}

func TestLHAgentRefreshFastPath(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 2)
	ctx := testCtx(t)
	lh := LHAgentID(c.nodes[1].ID())

	// Warm the copy.
	var who WhoisResp
	if err := c.nodes[1].CallAgent(ctx, c.nodes[1].ID(), lh, KindWhois, WhoisReq{Target: "anyone"}, &who); err != nil {
		t.Fatal(err)
	}
	if who.HashVersion != 1 {
		t.Fatalf("whois version = %d, want 1", who.HashVersion)
	}
	// A refresh to a version we already have must not change anything
	// (and must not error even if the HAgent were unreachable — it is
	// the no-contact fast path).
	var resp RefreshResp
	if err := c.nodes[1].CallAgent(ctx, c.nodes[1].ID(), lh, KindRefresh, RefreshReq{MinVersion: 1}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.HashVersion != 1 {
		t.Errorf("refresh version = %d, want 1", resp.HashVersion)
	}
}

func TestLHAgentEagerAdopt(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 2)
	ctx := testCtx(t)
	lh := LHAgentID(c.nodes[1].ID())

	// Push a newer state directly (what EagerPropagation does).
	st := &State{
		Ver:       9,
		Tree:      hashtree.New("iagent-1"),
		Locations: map[ids.AgentID]platform.NodeID{"iagent-1": c.nodes[0].ID()},
	}
	var resp RefreshResp
	err := c.nodes[1].CallAgent(ctx, c.nodes[1].ID(), lh, KindLHAdopt, AdoptLHStateReq{State: st.DTO()}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.HashVersion != 9 {
		t.Errorf("adopted version = %d, want 9", resp.HashVersion)
	}
	// Whois now answers from the pushed copy without contacting the
	// HAgent.
	var who WhoisResp
	if err := c.nodes[1].CallAgent(ctx, c.nodes[1].ID(), lh, KindWhois, WhoisReq{Target: "x"}, &who); err != nil {
		t.Fatal(err)
	}
	if who.HashVersion != 9 {
		t.Errorf("whois version = %d, want 9", who.HashVersion)
	}
	// An older push is ignored.
	st.Ver = 3
	if err := c.nodes[1].CallAgent(ctx, c.nodes[1].ID(), lh, KindLHAdopt, AdoptLHStateReq{State: st.DTO()}, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.HashVersion != 9 {
		t.Errorf("version after stale push = %d, want 9", resp.HashVersion)
	}
}

func TestEagerPropagationEndToEnd(t *testing.T) {
	cfg := quietConfig()
	cfg.EagerPropagation = true
	c := newTestCluster(t, cfg, 3)
	ctx := testCtx(t)
	deployed := c.service.Config()

	homes := registerMany(t, c, ctx, 12)
	perAgent := make(map[ids.AgentID]uint64, len(homes))
	for agent := range homes {
		perAgent[agent] = 4
	}
	var resp RehashResp
	err := c.nodes[0].CallAgent(ctx, deployed.HAgentNode, deployed.HAgent, KindRequestSplit,
		RequestSplitReq{IAgent: "iagent-1", HashVersion: 1, Rate: 999, PerAgent: perAgent}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("split status = %v", resp.Status)
	}
	// Every LHAgent already has version 2 — whois answers v2 with no
	// refresh round trip.
	for _, n := range c.nodes {
		var who WhoisResp
		if err := n.CallAgent(ctx, n.ID(), LHAgentID(n.ID()), KindWhois, WhoisReq{Target: "x"}, &who); err != nil {
			t.Fatal(err)
		}
		if who.HashVersion != 2 {
			t.Errorf("LHAgent at %s has version %d, want 2 (eager push)", n.ID(), who.HashVersion)
		}
	}
}

func TestRehashEventsTraced(t *testing.T) {
	// Build a traced cluster by hand (newTestCluster doesn't wire traces).
	log := trace.NewLog(64)
	net := transport.NewNetwork(transport.NetworkConfig{})
	t.Cleanup(func() { net.Close() })
	var nodes []*platform.Node
	for i := 0; i < 2; i++ {
		n, err := platform.NewNode(platform.Config{
			ID:    platform.NodeID(fmt.Sprintf("node-%d", i)),
			Link:  net,
			Trace: log,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodes = append(nodes, n)
	}
	svc, err := Deploy(context.Background(), quietConfig(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	ctx := testCtx(t)
	cfg := svc.Config()

	// Register agents and force a split, then a merge.
	client := svc.ClientFor(nodes[0])
	perAgent := make(map[ids.AgentID]uint64)
	for i := 0; i < 12; i++ {
		id := ids.AgentID(fmt.Sprintf("tr-%d", i))
		if _, err := client.Register(ctx, id); err != nil {
			t.Fatal(err)
		}
		perAgent[id] = 3
	}
	var resp RehashResp
	err = nodes[0].CallAgent(ctx, cfg.HAgentNode, cfg.HAgent, KindRequestSplit,
		RequestSplitReq{IAgent: "iagent-1", HashVersion: 1, Rate: 999, PerAgent: perAgent}, &resp)
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("split: %v / %v", err, resp.Status)
	}
	err = nodes[0].CallAgent(ctx, cfg.HAgentNode, cfg.HAgent, KindRequestMerge,
		RequestMergeReq{IAgent: "iagent-2", HashVersion: resp.HashVersion}, &resp)
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("merge: %v / %v", err, resp.Status)
	}

	if got := len(log.Filter("rehash.split")); got != 1 {
		t.Errorf("split events = %d, want 1\n%s", got, log.Render())
	}
	if got := len(log.Filter("rehash.merge")); got != 1 {
		t.Errorf("merge events = %d, want 1\n%s", got, log.Render())
	}
	if got := len(log.Filter("iagent.")); got < 1 {
		t.Errorf("iagent events = %d, want ≥ 1\n%s", got, log.Render())
	}
}
