package core

import (
	"fmt"
	"testing"

	"agentloc/internal/ids"
)

func TestDepositAndCheckIn(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 3)
	ctx := testCtx(t)

	target := ids.AgentID("wanderer")
	client0 := c.service.ClientFor(c.nodes[0])
	assign, err := client0.Register(ctx, target)
	if err != nil {
		t.Fatal(err)
	}

	// Two senders deposit while the target is "between hops".
	sender := c.service.ClientFor(c.nodes[1])
	if err := sender.Deposit(ctx, "alice", target, "greeting", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := sender.Deposit(ctx, "bob", target, "task", []byte("fetch prices")); err != nil {
		t.Fatal(err)
	}

	// The target arrives at node 2 and checks in: update + mail, one
	// round trip.
	client2 := c.service.ClientFor(c.nodes[2])
	newAssign, pending, err := client2.CheckIn(ctx, target, assign)
	if err != nil {
		t.Fatal(err)
	}
	if newAssign.Zero() {
		t.Fatal("check-in returned zero assignment")
	}
	if len(pending) != 2 {
		t.Fatalf("pending = %d messages, want 2", len(pending))
	}
	if pending[0].From != "alice" || pending[0].Kind != "greeting" || string(pending[0].Payload) != "hello" {
		t.Errorf("first message = %+v", pending[0])
	}
	if pending[1].From != "bob" {
		t.Errorf("second message from %s, want bob", pending[1].From)
	}

	// The check-in also updated the location.
	where, err := client0.Locate(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	if where != c.nodes[2].ID() {
		t.Errorf("located at %s, want node-2", where)
	}

	// Mail is delivered exactly once.
	_, pending, err = client2.CheckIn(ctx, target, newAssign)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Errorf("second check-in delivered %d messages, want 0", len(pending))
	}
}

func TestDepositForUnregisteredAgentHeld(t *testing.T) {
	// A deposit can precede registration: the IAgent holds it until the
	// agent's first check-in (creation order is not observable in an
	// asynchronous system, so this must work).
	c := newTestCluster(t, quietConfig(), 2)
	ctx := testCtx(t)

	sender := c.service.ClientFor(c.nodes[0])
	if err := sender.Deposit(ctx, "early", "late-bird", "welcome", nil); err != nil {
		t.Fatal(err)
	}
	client := c.service.ClientFor(c.nodes[1])
	_, pending, err := client.CheckIn(ctx, "late-bird", Assignment{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].From != "early" {
		t.Fatalf("pending = %+v, want the early deposit", pending)
	}
}

// TestDepositSurvivesRehash checks the extension's interaction with the
// core mechanism: pending mail follows the handoff when the responsible
// IAgent changes.
func TestDepositSurvivesRehash(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 3)
	ctx := testCtx(t)
	cfg := c.service.Config()

	// Register a population and deposit one message for each agent.
	homes := registerMany(t, c, ctx, 16)
	sender := c.service.ClientFor(c.nodes[1])
	for agent := range homes {
		if err := sender.Deposit(ctx, "oracle", agent, "note", []byte(agent)); err != nil {
			t.Fatal(err)
		}
	}

	// Force a split: half the agents move to a new IAgent, and their mail
	// must move with them.
	perAgent := make(map[ids.AgentID]uint64, len(homes))
	for agent := range homes {
		perAgent[agent] = 3
	}
	var resp RehashResp
	err := c.nodes[0].CallAgent(ctx, cfg.HAgentNode, cfg.HAgent, KindRequestSplit,
		RequestSplitReq{IAgent: "iagent-1", HashVersion: 1, Rate: 999, PerAgent: perAgent}, &resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("split status = %v", resp.Status)
	}

	// Every agent checks in (from its home node's client) and must
	// receive exactly its one message.
	for agent, home := range homes {
		var client *Client
		for _, n := range c.nodes {
			if n.ID() == home {
				client = c.service.ClientFor(n)
			}
		}
		_, pending, err := client.CheckIn(ctx, agent, Assignment{})
		if err != nil {
			t.Fatalf("check-in %s: %v", agent, err)
		}
		if len(pending) != 1 || string(pending[0].Payload) != string(agent) {
			t.Errorf("%s received %+v, want its one note", agent, pending)
		}
	}
}

// TestFastMoverReceivesDeposits is the headline guarantee: a target that
// relocates constantly still receives every deposited message, because
// delivery rides its own check-ins instead of chasing it.
func TestFastMoverReceivesDeposits(t *testing.T) {
	c := newTestCluster(t, quietConfig(), 4)
	ctx := testCtx(t)

	target := ids.AgentID("speedy")
	assign, err := c.service.ClientFor(c.nodes[0]).Register(ctx, target)
	if err != nil {
		t.Fatal(err)
	}

	sender := c.service.ClientFor(c.nodes[3])
	const messages = 20
	received := 0
	// Interleave deposits with rapid "hops": the agent checks in from a
	// different node each time, collecting whatever arrived meanwhile.
	for i := 0; i < messages; i++ {
		if err := sender.Deposit(ctx, "hq", target, "cmd", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
		node := c.nodes[i%len(c.nodes)]
		var pending []Deposited
		assign, pending, err = c.service.ClientFor(node).CheckIn(ctx, target, assign)
		if err != nil {
			t.Fatal(err)
		}
		received += len(pending)
	}
	// Final check-in drains anything still queued.
	_, pending, err := c.service.ClientFor(c.nodes[0]).CheckIn(ctx, target, assign)
	if err != nil {
		t.Fatal(err)
	}
	received += len(pending)
	if received != messages {
		t.Errorf("received %d messages, want %d (none lost, none duplicated)", received, messages)
	}
}
