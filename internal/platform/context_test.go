package platform

import (
	"context"
	"fmt"
	"testing"
	"time"

	"agentloc/internal/ids"
)

// chattyBehavior exercises the Context surface from inside a Run loop: it
// calls a peer agent, sleeps, and disposes itself on request.
type chattyBehavior struct {
	Peer     ids.AgentID
	PeerNode NodeID

	started chan string // receives the peer's reply once
}

func (c *chattyBehavior) HandleRequest(ctx *Context, kind string, payload []byte) (any, error) {
	switch kind {
	case "greet":
		return echoResp{Text: "hello from " + string(ctx.Self()) + " at " + string(ctx.Node())}, nil
	case "die":
		// Disposal must not run inside the mailbox (it would deadlock);
		// signal the Run goroutine instead. For the test we dispose from
		// a fresh goroutine, the documented alternative.
		go ctx.Dispose()
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}

func (c *chattyBehavior) Run(ctx *Context) error {
	if ctx.Clock() == nil {
		return fmt.Errorf("nil clock")
	}
	if !ctx.Sleep(time.Millisecond) {
		return nil
	}
	if c.Peer != "" {
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		var resp echoResp
		if err := ctx.Call(cctx, c.PeerNode, c.Peer, "echo", echoReq{Text: "hi"}, &resp); err != nil {
			return err
		}
		c.started <- resp.Text
	}
	<-ctx.Done()
	return nil
}

var (
	_ Behavior = (*chattyBehavior)(nil)
	_ Runner   = (*chattyBehavior)(nil)
)

func TestContextSurface(t *testing.T) {
	nodes := newTestNodes(t, "cs-1", "cs-2")
	if got := nodes["cs-1"].ID(); got != "cs-1" {
		t.Errorf("ID() = %s", got)
	}
	if nodes["cs-1"].Clock() == nil {
		t.Error("nil node clock")
	}

	if err := nodes["cs-2"].Launch("peer", &echoBehavior{Tag: "p"}); err != nil {
		t.Fatal(err)
	}
	started := make(chan string, 1)
	chatty := &chattyBehavior{Peer: "peer", PeerNode: "cs-2", started: started}
	if err := nodes["cs-1"].Launch("chatty", chatty); err != nil {
		t.Fatal(err)
	}

	select {
	case text := <-started:
		if text != "p:hi" {
			t.Errorf("peer reply = %q", text)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run never completed its Call")
	}

	// Agents() lists the hosted agent.
	found := false
	for _, id := range nodes["cs-1"].Agents() {
		if id == "chatty" {
			found = true
		}
	}
	if !found {
		t.Errorf("Agents() = %v, missing chatty", nodes["cs-1"].Agents())
	}

	// Context methods answered from a handler.
	var resp echoResp
	if err := nodes["cs-2"].CallAgent(callCtx(t), "cs-1", "chatty", "greet", nil, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Text != "hello from chatty at cs-1" {
		t.Errorf("greet = %q", resp.Text)
	}

	// Dispose (from a goroutine, signalled by a request) removes the
	// agent and unblocks <-ctx.Done().
	if err := nodes["cs-2"].CallAgent(callCtx(t), "cs-1", "chatty", "die", nil, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for nodes["cs-1"].Hosts("chatty") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if nodes["cs-1"].Hosts("chatty") {
		t.Error("agent still hosted after Dispose")
	}
}

func TestContextLaunchAt(t *testing.T) {
	RegisterBehavior(&echoBehavior{})
	nodes := newTestNodes(t, "la-1", "la-2")
	if err := nodes["la-1"].Launch("spawner", &spawnerBehavior{Target: "la-2"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !nodes["la-2"].Hosts("spawned") && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if !nodes["la-2"].Hosts("spawned") {
		t.Fatal("spawner never launched its child remotely")
	}
}

// spawnerBehavior launches another agent remotely from its Run loop,
// exercising Context.LaunchAt (how the HAgent creates IAgents).
type spawnerBehavior struct {
	Target NodeID
}

func (s *spawnerBehavior) HandleRequest(ctx *Context, kind string, payload []byte) (any, error) {
	return nil, fmt.Errorf("no requests")
}

func (s *spawnerBehavior) Run(ctx *Context) error {
	cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return ctx.LaunchAt(cctx, s.Target, "spawned", &echoBehavior{Tag: "child"}, 0)
}
