// Package loctable provides the sharded location table behind an IAgent:
// agent-id → node mappings split over N power-of-two stripes, each behind
// its own sync.RWMutex. Stripes are selected from the agent id's mixed hash
// bits, so concurrent Get calls (the locate hot path) never contend with
// each other and only collide with a Put/Delete that lands on the same
// stripe. Full-table operations (Snapshot, Range) take one stripe lock at a
// time — readers and writers on other stripes proceed while a snapshot or a
// checkpoint iteration is in flight; there is no global pause.
//
// A Table gob-encodes as a plain map, so behaviours that carry one in their
// migrating state serialize exactly as they did when the field was a map.
package loctable

import (
	"bytes"
	"encoding/gob"
	"sync"
	"sync/atomic"

	"agentloc/internal/ids"
	"agentloc/internal/platform"
)

// DefaultStripes is the stripe count used by New. 16 stripes keep stripe
// collisions between a reader and a writer below ~6% while the per-table
// footprint stays negligible.
const DefaultStripes = 16

// stripe is one lock-plus-map shard of the table.
type stripe struct {
	mu sync.RWMutex
	m  map[ids.AgentID]platform.NodeID
}

// Table is a sharded agent-location map, safe for concurrent use.
type Table struct {
	stripes []stripe
	mask    uint64
	count   atomic.Int64
}

// New returns an empty table with DefaultStripes stripes.
func New() *Table { return NewWithStripes(DefaultStripes) }

// NewWithStripes returns an empty table with n stripes, rounded up to the
// next power of two (minimum 1).
func NewWithStripes(n int) *Table {
	size := 1
	for size < n {
		size <<= 1
	}
	t := &Table{stripes: make([]stripe, size), mask: uint64(size - 1)}
	for i := range t.stripes {
		t.stripes[i].m = make(map[ids.AgentID]platform.NodeID)
	}
	return t
}

// stripeFor selects the stripe serving the agent. The hash tree consumes
// the id's leading bits, so a leaf deep in the tree serves ids that share a
// long prefix; striping by the hash's LOW bits keeps the stripes of a hot
// leaf uniformly loaded regardless of the leaf's depth.
func (t *Table) stripeFor(agent ids.AgentID) *stripe {
	return &t.stripes[agent.Hash64()&t.mask]
}

// Get returns the recorded node of an agent.
func (t *Table) Get(agent ids.AgentID) (platform.NodeID, bool) {
	s := t.stripeFor(agent)
	s.mu.RLock()
	node, ok := s.m[agent]
	s.mu.RUnlock()
	return node, ok
}

// Put records (or replaces) the agent's node.
func (t *Table) Put(agent ids.AgentID, node platform.NodeID) {
	s := t.stripeFor(agent)
	s.mu.Lock()
	_, existed := s.m[agent]
	s.m[agent] = node
	s.mu.Unlock()
	if !existed {
		t.count.Add(1)
	}
}

// Delete forgets an agent, reporting whether an entry existed.
func (t *Table) Delete(agent ids.AgentID) bool {
	s := t.stripeFor(agent)
	s.mu.Lock()
	_, existed := s.m[agent]
	delete(s.m, agent)
	s.mu.Unlock()
	if existed {
		t.count.Add(-1)
	}
	return existed
}

// Len returns the number of entries. It reads a counter maintained across
// stripes, so it never takes a lock.
func (t *Table) Len() int { return int(t.count.Load()) }

// Snapshot copies the table into a plain map, locking one stripe at a time.
// Entries mutated on already-visited stripes during the copy may be missed —
// the same weak consistency a concurrent map range would give, and exactly
// what incremental checkpointing tolerates.
func (t *Table) Snapshot() map[ids.AgentID]platform.NodeID {
	out := make(map[ids.AgentID]platform.NodeID, t.Len())
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		for a, n := range s.m {
			out[a] = n
		}
		s.mu.RUnlock()
	}
	return out
}

// Range calls f for every entry until f returns false, holding only the
// current stripe's read lock. f must not call back into the same Table's
// write methods (self-deadlock on the stripe lock).
func (t *Table) Range(f func(agent ids.AgentID, node platform.NodeID) bool) {
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		for a, n := range s.m {
			if !f(a, n) {
				s.mu.RUnlock()
				return
			}
		}
		s.mu.RUnlock()
	}
}

// GobEncode implements gob.GobEncoder: the table serializes as the plain
// map form, keeping behaviour snapshots identical to the pre-sharding wire
// format.
func (t *Table) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(t.Snapshot()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (t *Table) GobDecode(data []byte) error {
	var m map[ids.AgentID]platform.NodeID
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&m); err != nil {
		return err
	}
	if t.stripes == nil {
		// Initialize in place; assigning a whole Table would copy its locks.
		fresh := New()
		t.stripes = fresh.stripes
		t.mask = fresh.mask
	}
	for a, n := range m {
		t.Put(a, n)
	}
	return nil
}
