package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"agentloc/internal/core"
	"agentloc/internal/metrics"
	"agentloc/internal/platform"
	"agentloc/internal/trace"
	"agentloc/internal/transport"
)

const sampleExposition = `# HELP agentloc_core_requests_total Requests served.
# TYPE agentloc_core_requests_total counter
agentloc_core_requests_total{op="locate"} 42
agentloc_core_requests_total{op="update"} 7
# TYPE agentloc_core_hashtree_leaves gauge
agentloc_core_hashtree_leaves 3
# TYPE agentloc_core_locate_latency_seconds histogram
agentloc_core_locate_latency_seconds_bucket{le="0.25"} 1
agentloc_core_locate_latency_seconds_bucket{le="0.5"} 3
agentloc_core_locate_latency_seconds_bucket{le="1"} 4
agentloc_core_locate_latency_seconds_bucket{le="+Inf"} 5
agentloc_core_locate_latency_seconds_sum 5.625
agentloc_core_locate_latency_seconds_count 5
# TYPE agentloc_transport_rpc_latency_seconds histogram
agentloc_transport_rpc_latency_seconds_bucket{kind="loc.locate",le="0.001"} 2
agentloc_transport_rpc_latency_seconds_bucket{kind="loc.locate",le="+Inf"} 2
agentloc_transport_rpc_latency_seconds_sum{kind="loc.locate"} 0.0005
agentloc_transport_rpc_latency_seconds_count{kind="loc.locate"} 2
`

func TestPrettyMetrics(t *testing.T) {
	var b strings.Builder
	if err := prettyMetrics(strings.NewReader(sampleExposition), &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`agentloc_core_requests_total{op="locate"}`,
		"agentloc_core_hashtree_leaves",
		"agentloc_core_locate_latency_seconds",
		"count=5",
		`agentloc_transport_rpc_latency_seconds{kind="loc.locate"}`,
		"count=2",
		"mean=1.125s", // 5.625 / 5, rendered as a duration
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Histograms must be folded, not echoed raw.
	if strings.Contains(out, "_bucket") || strings.Contains(out, "le=") {
		t.Errorf("raw bucket lines leaked into output:\n%s", out)
	}
}

func TestParseSample(t *testing.T) {
	name, labels, v, ok := parseSample(`agentloc_x_total{kind="a,b",node="n"} 12`)
	if !ok || name != "agentloc_x_total" || labels != `{kind="a,b",node="n"}` || v != 12 {
		t.Errorf("parseSample = %q %q %v %v", name, labels, v, ok)
	}
	name, labels, v, ok = parseSample("agentloc_plain 1.5")
	if !ok || name != "agentloc_plain" || labels != "" || v != 1.5 {
		t.Errorf("parseSample plain = %q %q %v %v", name, labels, v, ok)
	}
	if _, _, _, ok := parseSample("garbage line with words"); ok {
		t.Error("garbage accepted")
	}
}

func TestExtractLE(t *testing.T) {
	le, rest := extractLE(`{kind="x",le="0.5"}`)
	if le != "0.5" || rest != `{kind="x"}` {
		t.Errorf("extractLE = %q %q", le, rest)
	}
	le, rest = extractLE(`{le="+Inf"}`)
	if le != "+Inf" || rest != "" {
		t.Errorf("extractLE inf = %q %q", le, rest)
	}
}

func TestMetricsCmdUsage(t *testing.T) {
	if err := metricsCmd(nil, 0, nil); err == nil {
		t.Error("missing target accepted")
	}
}

// TestTraceCmdEndToEnd runs the trace subcommand's whole pipeline against an
// in-process cluster: a traced locate from the probe's client, two cluster
// nodes scraped over real HTTP, and the merged spans reassembled into one
// causal tree with a latency attribution table.
func TestTraceCmdEndToEnd(t *testing.T) {
	network := transport.NewNetwork(transport.NetworkConfig{})
	t.Cleanup(func() { network.Close() })

	nodes := make([]*platform.Node, 3)
	recs := make([]*trace.Recorder, 3)
	for i := range nodes {
		id := fmt.Sprintf("node-%d", i)
		recs[i] = trace.NewRecorder(id, 1024, 1)
		n, err := platform.NewNode(platform.Config{ID: platform.NodeID(id), Link: network, Tracer: recs[i]})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		nodes[i] = n
	}
	cfg := core.DefaultConfig()
	cfg.TMax = 1e9 // never rehash during the test
	cfg.HAgentNode = "node-0"
	cfg.PlacementNodes = []platform.NodeID{"node-1"}
	svc, err := core.Deploy(context.Background(), cfg, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)

	// Register through node-1 so the probe's locate below is a cold miss
	// that crosses all three nodes (hash fetch at node-0, IAgent at
	// node-1, probe at node-2).
	if _, err := svc.ClientFor(nodes[1]).Register(ctx, "traced"); err != nil {
		t.Fatal(err)
	}

	// The cluster nodes' /trace endpoints, exactly as locnode serves them.
	endpoints := make([]string, 2)
	for i := 0; i < 2; i++ {
		srv := httptest.NewServer(metrics.ObservabilityHandler(metrics.New(), nil, recs[i], nil))
		t.Cleanup(srv.Close)
		endpoints[i] = srv.URL + "/trace"
	}

	client := core.NewClient(core.NodeCaller{N: nodes[2]}, cfg)
	var out strings.Builder
	if err := traceCmd(ctx, client, recs[2], "traced", endpoints, 5*time.Second, &out); err != nil {
		t.Fatalf("traceCmd: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"traced is at node-1",
		"3 node(s)",
		"client locate",
		"whois",
		"iagent.locate",
		"@node-0", // the HAgent's hash fetch, proof the tree crosses nodes
		"@node-1",
		"latency attribution for locate:",
		"unattributed",
		"total",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("trace output missing %q:\n%s", want, got)
		}
	}
}

// TestEventsCmd fetches a node's decision log over HTTP with and without a
// kind-prefix filter.
func TestEventsCmd(t *testing.T) {
	log := trace.NewLog(16)
	log.Emit("hagent", "rehash.split", "leaf 01 split")
	log.Emit("iagent-1", "iagent.adopt", "adopted leaf")
	srv := httptest.NewServer(metrics.ObservabilityHandler(metrics.New(), nil, nil, log))
	t.Cleanup(srv.Close)

	var out strings.Builder
	if err := eventsCmd([]string{srv.URL + "/events"}, 5*time.Second, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "rehash.split") || !strings.Contains(got, "iagent.adopt") {
		t.Errorf("unfiltered events missing entries:\n%s", got)
	}

	out.Reset()
	if err := eventsCmd([]string{srv.URL + "/events", "rehash."}, 5*time.Second, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "rehash.split") || strings.Contains(got, "iagent.adopt") {
		t.Errorf("kind filter not applied:\n%s", got)
	}

	if err := eventsCmd(nil, 0, nil); err == nil {
		t.Error("missing target accepted")
	}
}
