package transport

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"agentloc/internal/metrics"
	"agentloc/internal/trace"
)

// newFaultyTCPPair builds a client → server TCP pair where the client's
// outgoing connections carry the given fault injector.
func newFaultyTCPPair(t *testing.T, clientCfg TCPConfig) (client, server *TCP, got chan Envelope) {
	t.Helper()
	server, err := NewTCP(TCPConfig{ListenOn: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close() })
	got = make(chan Envelope, 16)
	if err := server.Listen("server", func(env Envelope) { got <- env }); err != nil {
		t.Fatal(err)
	}
	clientCfg.ListenOn = "127.0.0.1:0"
	if clientCfg.Directory == nil {
		clientCfg.Directory = map[Addr]string{}
	}
	clientCfg.Directory["server"] = server.ListenAddr()
	client, err = NewTCP(clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client, server, got
}

func TestTCPDialTimeout(t *testing.T) {
	// A 1ns dial budget cannot complete even a loopback handshake: the
	// configured timeout must surface promptly instead of the OS connect
	// timeout (minutes).
	client, _, _ := newFaultyTCPPair(t, TCPConfig{DialTimeout: time.Nanosecond})
	start := time.Now()
	err := client.Send(Envelope{From: "c", To: "server", Kind: "x"})
	if err == nil {
		t.Fatal("send succeeded with a 1ns dial timeout")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial failure took %v, want well under the OS connect timeout", elapsed)
	}
}

func TestTCPWriteDeadlineUnsticksStalledPeer(t *testing.T) {
	// A peer that accepts but never reads must cost at most the write
	// timeout, not block the sender forever.
	f := NewFaults()
	client, _, got := newFaultyTCPPair(t, TCPConfig{Faults: f, WriteTimeout: 150 * time.Millisecond})

	f.StallWrites(true)
	start := time.Now()
	err := client.Send(Envelope{From: "c", To: "server", Kind: "stalled"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("send to a stalled peer succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("error = %v, want deadline exceeded", err)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("stalled send returned after %v, want ~150ms", elapsed)
	}

	// The broken connection was dropped; once the stall clears, the next
	// send redials and delivers.
	f.StallWrites(false)
	if err := client.Send(Envelope{From: "c", To: "server", Kind: "recovered"}); err != nil {
		t.Fatalf("send after stall cleared: %v", err)
	}
	select {
	case env := <-got:
		if env.Kind != "recovered" {
			t.Errorf("delivered %q, want recovered", env.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("send after stall cleared not delivered")
	}
}

func TestTCPStalledPeerDoesNotBlockHealthyPeer(t *testing.T) {
	// Head-of-line check: while a send to a stalled peer is waiting out
	// its write deadline, traffic to a healthy peer on the same link must
	// flow unimpeded.
	f := NewFaults()
	client, _, _ := newFaultyTCPPair(t, TCPConfig{Faults: f, WriteTimeout: 2 * time.Second})

	healthy, err := NewTCP(TCPConfig{ListenOn: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	healthyGot := make(chan Envelope, 1)
	if err := healthy.Listen("healthy", func(env Envelope) { healthyGot <- env }); err != nil {
		t.Fatal(err)
	}
	client.AddRoute("healthy", healthy.ListenAddr())

	f.StallWritesTo(client.directoryLookup(t, "server"), true)

	stalledDone := make(chan error, 1)
	go func() {
		stalledDone <- client.Send(Envelope{From: "c", To: "server", Kind: "wedge"})
	}()
	// Give the stalled send a moment to take its connection's lock.
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	if err := client.Send(Envelope{From: "c", To: "healthy", Kind: "ping"}); err != nil {
		t.Fatalf("send to healthy peer: %v", err)
	}
	select {
	case <-healthyGot:
	case <-time.After(5 * time.Second):
		t.Fatal("healthy peer never received while another peer stalled")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("healthy send took %v while a stalled peer was pending", elapsed)
	}

	select {
	case err := <-stalledDone:
		if err == nil {
			t.Error("stalled send reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled send never returned")
	}
}

// directoryLookup returns the dial target for addr (test helper).
func (t *TCP) directoryLookup(tb testing.TB, addr Addr) string {
	tb.Helper()
	t.mu.Lock()
	defer t.mu.Unlock()
	hp, ok := t.directory[addr]
	if !ok {
		tb.Fatalf("no directory entry for %s", addr)
	}
	return hp
}

func TestTCPTransparentResendAfterReset(t *testing.T) {
	// An envelope that hits a connection broken while idle (peer reset)
	// must be resent over a fresh connection within the same Send call.
	f := NewFaults()
	client, _, got := newFaultyTCPPair(t, TCPConfig{Faults: f, RedialBackoff: time.Millisecond})

	if err := client.Send(Envelope{From: "c", To: "server", Kind: "one"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("first send not delivered")
	}

	f.ResetAll()
	if err := client.Send(Envelope{From: "c", To: "server", Kind: "two"}); err != nil {
		t.Fatalf("send after reset not transparently resent: %v", err)
	}
	select {
	case env := <-got:
		if env.Kind != "two" {
			t.Errorf("delivered %q, want two", env.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("resent envelope not delivered")
	}
}

func TestTCPDecodeErrorCountedAndTraced(t *testing.T) {
	// Corrupt bytes on the wire must not vanish silently: the receiving
	// link counts them and records a trace event.
	reg := metrics.New()
	trc := trace.NewLog(64)
	server, err := NewTCP(TCPConfig{ListenOn: "127.0.0.1:0", Metrics: reg, Trace: trc})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	if err := server.Listen("server", func(Envelope) {}); err != nil {
		t.Fatal(err)
	}

	f := NewFaults()
	client, err := NewTCP(TCPConfig{
		ListenOn:  "127.0.0.1:0",
		Directory: map[Addr]string{"server": server.ListenAddr()},
		Faults:    f,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	f.CorruptWrites(true)
	if err := client.Send(Envelope{From: "c", To: "server", Kind: "garbage"}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if reg.Snapshot().Counter(metricConnErrs) >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := reg.Snapshot().Counter(metricConnErrs); got == 0 {
		t.Fatal("corrupt stream not counted into conn_errors_total")
	}
	if events := trc.Filter("transport.conn_error"); len(events) == 0 {
		t.Error("corrupt stream left no trace event")
	}
}

func TestTCPSlowAccept(t *testing.T) {
	// A server slow to start reading delays delivery but loses nothing.
	f := NewFaults()
	server, err := NewTCP(TCPConfig{ListenOn: "127.0.0.1:0", Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	got := make(chan time.Time, 1)
	if err := server.Listen("server", func(Envelope) { got <- time.Now() }); err != nil {
		t.Fatal(err)
	}
	f.SetAcceptDelay(200 * time.Millisecond)

	client, err := NewTCP(TCPConfig{
		ListenOn:  "127.0.0.1:0",
		Directory: map[Addr]string{"server": server.ListenAddr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	if err := client.Send(Envelope{From: "c", To: "server", Kind: "slow"}); err != nil {
		t.Fatal(err)
	}
	select {
	case at := <-got:
		if d := at.Sub(start); d < 150*time.Millisecond {
			t.Errorf("delivered after %v, want ≥ ~200ms (accept delay)", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("envelope lost behind a slow accept")
	}
}

// blockedLink is a Link whose Send blocks until the link is closed — the
// worst-case transport beneath an RPC call.
type blockedLink struct {
	mu      sync.Mutex
	release chan struct{}
	handler Handler
}

func newBlockedLink() *blockedLink { return &blockedLink{release: make(chan struct{})} }

func (l *blockedLink) Listen(addr Addr, h Handler) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.handler = h
	return nil
}
func (l *blockedLink) Unlisten(Addr) {}
func (l *blockedLink) Send(Envelope) error {
	<-l.release
	return ErrClosed
}
func (l *blockedLink) Close() error {
	close(l.release)
	return nil
}

func TestPeerCallDeadlineDespiteBlockedSend(t *testing.T) {
	// Even when the transport's Send blocks indefinitely, Peer.Call must
	// return at its context deadline — the acceptance bar for the stalled
	// peer scenario.
	link := newBlockedLink()
	defer link.Close()
	p, err := NewPeer(link, "caller", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = p.Call(ctx, "anyone", "x", nil, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("Call returned after %v with a 100ms deadline", elapsed)
	}
}

func TestNetworkSetDropProb(t *testing.T) {
	n := NewNetwork(NetworkConfig{})
	defer n.Close()
	delivered := make(chan Envelope, 64)
	if err := n.Listen("b", func(env Envelope) { delivered <- env }); err != nil {
		t.Fatal(err)
	}
	n.SetDropProb(1.0)
	for i := 0; i < 20; i++ {
		if err := n.Send(Envelope{From: "a", To: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-delivered:
		t.Fatal("delivered with DropProb 1.0")
	case <-time.After(50 * time.Millisecond):
	}
	n.SetDropProb(0)
	if err := n.Send(Envelope{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-delivered:
	case <-time.After(2 * time.Second):
		t.Fatal("not delivered after the loss healed")
	}
}
