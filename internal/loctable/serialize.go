package loctable

import (
	"fmt"

	"agentloc/internal/ids"
	"agentloc/internal/platform"
	"agentloc/internal/wire"
)

// This file gives the location table a stable, versioned binary form for
// snapshot files, parallel to hashtree's Serialize. The table streams out
// stripe-by-stripe under one stripe read lock at a time — a durable dump of
// a live table never pauses the locate hot path and never materializes a
// whole-table map.
//
// Payload layout (format version 1):
//
//	uvarint  stripe count (chunk count only; entries rehash on load)
//	per stripe: uvarint entry count, then (string agent, string node) pairs

// SerializeMagic identifies a serialized location table.
var SerializeMagic = [4]byte{'A', 'L', 'O', 'C'}

// SerializeVersion is the current binary format version.
const SerializeVersion = 1

// maxIDLen bounds a single encoded agent or node id. Real ids are short
// strings; a length near the bound is corruption.
const maxIDLen = 1 << 16

// Serialize encodes the table into its framed binary form. Like Snapshot it
// is weakly consistent: entries mutated on already-visited stripes during
// the dump may be missed, which WAL replay on recovery papers over.
func (t *Table) Serialize() ([]byte, error) {
	payload := wire.AppendUvarint(nil, uint64(len(t.stripes)))
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		payload = wire.AppendUvarint(payload, uint64(s.used))
		s.forEachLocked(func(a ids.AgentID, n platform.NodeID) bool {
			payload = wire.AppendString(payload, string(a))
			payload = wire.AppendString(payload, string(n))
			return true
		})
		s.mu.RUnlock()
	}
	return wire.AppendFrame(nil, SerializeMagic, SerializeVersion, 0, payload), nil
}

// Deserialize rebuilds a table from Serialize output. Entries rehash into a
// fresh table with the default stripe layout, so dumps are portable across
// stripe configurations. Errors are typed: wire.ErrTruncated,
// wire.ErrCorrupt or wire.ErrUnsupportedVersion, never a panic.
func Deserialize(data []byte) (*Table, error) {
	frame, n, err := wire.DecodeFrame(data, SerializeMagic, SerializeVersion)
	if err != nil {
		return nil, fmt.Errorf("loctable: deserialize: %w", err)
	}
	if n != len(data) {
		return nil, fmt.Errorf("loctable: deserialize: %w: %d trailing bytes", wire.ErrCorrupt, len(data)-n)
	}
	d := wire.NewDec(frame.Payload)
	stripes, err := d.Uvarint()
	if err != nil {
		return nil, fmt.Errorf("loctable: deserialize: %w", err)
	}
	if stripes == 0 || stripes > maxGobStripes {
		return nil, fmt.Errorf("loctable: deserialize: %w: impossible stripe count %d", wire.ErrCorrupt, stripes)
	}
	t := New()
	for i := uint64(0); i < stripes; i++ {
		count, err := d.Uvarint()
		if err != nil {
			return nil, fmt.Errorf("loctable: deserialize stripe %d: %w", i, err)
		}
		// Every entry takes at least two length-prefix bytes, so a count
		// beyond half the remaining payload cannot be satisfied.
		if count > uint64(d.Remaining()) {
			return nil, fmt.Errorf("loctable: deserialize stripe %d: %w: %d entries in %d bytes", i, wire.ErrCorrupt, count, d.Remaining())
		}
		for j := uint64(0); j < count; j++ {
			agent, err := d.String(maxIDLen)
			if err != nil {
				return nil, fmt.Errorf("loctable: deserialize agent: %w", err)
			}
			node, err := d.String(maxIDLen)
			if err != nil {
				return nil, fmt.Errorf("loctable: deserialize node: %w", err)
			}
			if agent == "" {
				return nil, fmt.Errorf("loctable: deserialize: %w: empty agent id", wire.ErrCorrupt)
			}
			if _, dup := t.Get(ids.AgentID(agent)); dup {
				return nil, fmt.Errorf("loctable: deserialize: %w: duplicate agent %q", wire.ErrCorrupt, agent)
			}
			t.Put(ids.AgentID(agent), platform.NodeID(node))
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("loctable: deserialize: %w", err)
	}
	return t, nil
}
