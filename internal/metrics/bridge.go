package metrics

import (
	"agentloc/internal/trace"
)

// BridgeTrace subscribes to a trace log's emit hook so that every traced
// decision also increments agentloc_trace_events_total{kind} in the
// registry. The event log stays the narrative record; the counters make the
// same decisions aggregatable. Nil log or nil registry is a no-op.
func BridgeTrace(l *trace.Log, r *Registry) {
	if l == nil || r == nil {
		return
	}
	r.Describe("agentloc_trace_events_total", "Trace events emitted, by event kind.")
	l.SetOnEmit(func(e trace.Event) {
		r.Counter("agentloc_trace_events_total", "kind", e.Kind).Inc()
	})
}
