GO ?= go
GOLANGCI ?= golangci-lint
BENCH_OUT ?= BENCH_read_path.json
COMIGRATE_OUT ?= BENCH_comigrate.json
MILLION_OUT ?= BENCH_million.json
MILLION_AGENTS ?= 1048576
DISCOVER_OUT ?= BENCH_discover.json
# Fuzz budget per target for `make fuzz`.
FUZZTIME ?= 30s

.PHONY: all build test short race vet lint fmt-check tidy-check fuzz bench benchdiff chaos ci clean

all: build

build:
	$(GO) build ./...

# Full suite: unit, integration, property, fuzz seeds, experiment sweeps.
# vet rides along so the default gate catches what the compiler tolerates.
test: vet
	$(GO) test ./...

# Skip the experiment sweeps for a fast signal.
short:
	$(GO) test -short ./...

# Everything under the race detector; -short keeps the fault-injection and
# chaos suites (and the experiment sweeps) out of the hot CI path.
race:
	$(GO) test -race -short ./...

vet:
	$(GO) vet ./...

# golangci-lint when available (CI installs it); plain vet otherwise, so the
# target never blocks a machine that only has the Go toolchain.
lint:
	@if command -v $(GOLANGCI) >/dev/null 2>&1; then \
		$(GOLANGCI) run ./...; \
	else \
		echo "golangci-lint not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# Formatting drift fails fast: gofmt must be a no-op over the whole tree.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Module drift: go.mod/go.sum must already be tidy.
tidy-check:
	$(GO) mod tidy -diff

# Short fuzzing sweep over every codec and table fuzz target; CI's fuzz
# workflow runs the same list on a schedule. Committed corpora live in each
# package's testdata/fuzz.
fuzz:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzMsgHeader -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzFrameDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hashtree -run '^$$' -fuzz FuzzDeserialize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hashtree -run '^$$' -fuzz FuzzDecodeJSON -fuzztime $(FUZZTIME)
	$(GO) test ./internal/loctable -run '^$$' -fuzz FuzzDeserialize -fuzztime $(FUZZTIME)
	$(GO) test ./internal/loctable -run '^$$' -fuzz FuzzDenseOps -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core -run '^$$' -fuzz FuzzHotMsgDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/transport -run '^$$' -fuzz FuzzEnvelopeDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/capindex -run '^$$' -fuzz FuzzApply -fuzztime $(FUZZTIME)

# Read-path, co-migration and million-agent benchmarks: fixed iteration
# counts for run-to-run comparability, measurements written to $(BENCH_OUT),
# $(COMIGRATE_OUT) and $(MILLION_OUT) for benchdiff.
bench:
	BENCH_OUT=$(abspath $(BENCH_OUT)) $(GO) test ./internal/bench -bench ReadPath -benchtime 4000x -run '^$$'
	COMIGRATE_OUT=$(abspath $(COMIGRATE_OUT)) $(GO) test ./internal/bench -bench CoMigrate -benchtime 200x -run '^$$'
	MILLION_OUT=$(abspath $(MILLION_OUT)) MILLION_AGENTS=$(MILLION_AGENTS) \
		$(GO) test ./internal/bench -bench Million -benchtime 1x -run '^$$' -timeout 20m
	DISCOVER_OUT=$(abspath $(DISCOVER_OUT)) $(GO) test ./internal/bench -bench Discover -benchtime 400x -run '^$$'

# Compare fresh benchmark runs against the committed baselines; non-zero
# exit on regressions past the p99, chase-hop, retry, update-RPC, alloc
# budget, or throughput gates.
benchdiff:
	BENCH_OUT=/tmp/BENCH_current.json $(GO) test ./internal/bench -bench ReadPath -benchtime 4000x -run '^$$'
	COMIGRATE_OUT=/tmp/BENCH_comigrate_current.json $(GO) test ./internal/bench -bench CoMigrate -benchtime 200x -run '^$$'
	MILLION_OUT=/tmp/BENCH_million_current.json MILLION_AGENTS=$(MILLION_AGENTS) \
		$(GO) test ./internal/bench -bench Million -benchtime 1x -run '^$$' -timeout 20m
	DISCOVER_OUT=/tmp/BENCH_discover_current.json $(GO) test ./internal/bench -bench Discover -benchtime 400x -run '^$$'
	$(GO) run ./cmd/benchdiff -baseline BENCH_read_path.json -current /tmp/BENCH_current.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_comigrate.json -current /tmp/BENCH_comigrate_current.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_million.json -current /tmp/BENCH_million_current.json
	$(GO) run ./cmd/benchdiff -baseline BENCH_discover.json -current /tmp/BENCH_discover_current.json

# Crash-tolerance soak: the failover, chaos, fault-injection and restart-
# recovery suites under the race detector, then the full-cluster kill-and-
# cold-start scenario on the simulated LAN.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Crash|Failover|Takeover|Checkpoint|Promot|Fallback|Recover|Torn' ./...
	$(GO) run ./cmd/locsim restart -chaos-restart-all -quick

ci: build fmt-check tidy-check vet lint short race

clean:
	$(GO) clean ./...
	rm -f locnode locctl locsim
