package main

import (
	"strings"
	"testing"
	"time"
)

func TestRunUsage(t *testing.T) {
	var sb strings.Builder
	if code := run(nil, &sb); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(sb.String(), "usage:") {
		t.Errorf("missing usage text:\n%s", sb.String())
	}
	sb.Reset()
	if code := run([]string{"bogus"}, &sb); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"exp1", "-nope"}, &sb); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
}

func TestRunTree(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"tree"}, &sb); code != 0 {
		t.Fatalf("exit code = %d, want 0:\n%s", code, sb.String())
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 1", "Figure 3", "Figure 4", "Figure 5", "Figure 6",
		"IA0", "IA7", "IA8", "hyper-label",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q", want)
		}
	}
}

func TestParseParams(t *testing.T) {
	p, err := parseParams([]string{"-quick", "-scale", "0.5", "-queries", "33", "-nodes", "7", "-seed", "9"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Scale != 0.5 || p.Queries != 33 || p.NumNodes != 7 || p.Seed != 9 {
		t.Errorf("params = %+v", p)
	}
	// Defaults pass through untouched.
	p, err = parseParams(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Scale != 1.0 || p.Queries != 200 {
		t.Errorf("default params = %+v", p)
	}
}

func TestParseChaosFlags(t *testing.T) {
	p, err := parseParams([]string{"-quick", "-chaos-drop", "0.1", "-chaos-jitter", "5ms"})
	if err != nil {
		t.Fatal(err)
	}
	if p.DropProb != 0.1 || p.NetJitter != 5*time.Millisecond {
		t.Errorf("chaos params = %+v", p)
	}
	// Defaults: chaos disarmed.
	p, err = parseParams(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.DropProb != 0 || p.NetJitter != 0 {
		t.Errorf("default chaos params = %+v", p)
	}
	// A drop probability of 1 would drop everything forever; reject it.
	for _, bad := range []string{"1", "1.5", "-0.1"} {
		if _, err := parseParams([]string{"-chaos-drop", bad}); err == nil {
			t.Errorf("-chaos-drop %s accepted, want error", bad)
		}
	}
}

func TestRunExp1Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment in -short mode")
	}
	var sb strings.Builder
	// A single minuscule point end-to-end through the CLI path.
	code := run([]string{"exp1", "-quick", "-scale", "0.15", "-queries", "10"}, &sb)
	if code != 0 {
		t.Fatalf("exit code = %d:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "Experiment I") {
		t.Errorf("missing header:\n%s", sb.String())
	}
}

func TestRunTreeDot(t *testing.T) {
	var sb strings.Builder
	if code := run([]string{"tree", "-dot"}, &sb); code != 0 {
		t.Fatalf("exit = %d:\n%s", code, sb.String())
	}
	if !strings.Contains(sb.String(), "digraph hashtree") {
		t.Errorf("missing dot output:\n%s", sb.String())
	}
}

// TestRunChaosRestartAll drives the durability scenario end to end through
// the CLI: full-cluster kill, cold start from the per-node data dirs, zero
// stale answers.
func TestRunChaosRestartAll(t *testing.T) {
	var sb strings.Builder
	code := run([]string{"restart", "-chaos-restart-all", "-quick", "-nodes", "3", "-data-dir", t.TempDir()}, &sb)
	if code != 0 {
		t.Fatalf("exit code = %d:\n%s", code, sb.String())
	}
	out := sb.String()
	for _, want := range []string{"killing all 3 nodes", "WAL records replayed", "fenced", "0 stale answers"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}
