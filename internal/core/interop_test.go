package core

import (
	"context"
	"fmt"
	"testing"
	"time"

	"agentloc/internal/ids"
	"agentloc/internal/transport"
	"agentloc/internal/wire"
)

// TestMixedVersionClusterInterop deploys the mechanism over real TCP with
// one node pinned to the gob envelope codec — the shape of a rolling
// upgrade where an old build lingers in the cluster. Every hot-path
// operation (locate, move updates, residence moves) must keep working
// across the version boundary: the binary peers negotiate the codec among
// themselves and transparently fall back to gob toward the pinned node.
// Finally, tearing down every cached connection must not surface errors —
// the transport redials and resends, re-running the handshake (or the gob
// fallback) per peer.
func TestMixedVersionClusterInterop(t *testing.T) {
	f := transport.NewFaults()
	const gobNode = 2
	c, links := newTCPCluster(t, quietConfig(), 3, func(i int, tc *transport.TCPConfig) {
		tc.Faults = f
		tc.RedialBackoff = time.Millisecond
		if i == gobNode {
			tc.Wire = transport.WireGob
		}
	})
	ctx := testCtx(t)

	// The negotiated version is per peer: binary between the two new
	// nodes, gob toward the pinned one.
	if got := transport.NegotiatedWireVersion(ctx, links[0], c.nodes[1].ID().Addr()); got != wire.MsgVersion {
		t.Errorf("binary<->binary negotiated version %d, want %d", got, wire.MsgVersion)
	}
	if got := transport.NegotiatedWireVersion(ctx, links[0], c.nodes[gobNode].ID().Addr()); got != 0 {
		t.Errorf("binary->gob negotiated version %d, want 0 (gob fallback)", got)
	}

	newSide := c.service.ClientFor(c.nodes[0])
	bystander := c.service.ClientFor(c.nodes[1])
	oldSide := c.service.ClientFor(c.nodes[gobNode])

	// Registrations land on both sides of the boundary; locates cross it
	// in both directions.
	assignNew, err := newSide.Register(ctx, "interop-new")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oldSide.Register(ctx, "interop-old"); err != nil {
		t.Fatal(err)
	}
	if got, err := oldSide.Locate(ctx, "interop-new"); err != nil || got != c.nodes[0].ID() {
		t.Fatalf("old-side locate = %v at %s, want %s", err, got, c.nodes[0].ID())
	}
	if got, err := newSide.Locate(ctx, "interop-old"); err != nil || got != c.nodes[gobNode].ID() {
		t.Fatalf("new-side locate = %v at %s, want %s", err, got, c.nodes[gobNode].ID())
	}

	// A migration reported through the old node: the update RPC leaves a
	// gob-pinned link, and the fresh location must be visible from a
	// binary node that never cached it.
	if _, err := oldSide.MoveNotifyTo(ctx, "interop-new", c.nodes[gobNode].ID(), assignNew); err != nil {
		t.Fatalf("move via gob node: %v", err)
	}
	if got, err := bystander.Locate(ctx, "interop-new"); err != nil || got != c.nodes[gobNode].ID() {
		t.Fatalf("locate after move = %v at %s, want %s", err, got, c.nodes[gobNode].ID())
	}

	// A residence group driven from the old node: Join and MoveTo issue
	// bound updates and residence-move RPCs across the version boundary.
	group := oldSide.ResidenceGroup("res@interop")
	members := make([]ids.AgentID, 3)
	for i := range members {
		members[i] = ids.AgentID(fmt.Sprintf("interop-member-%d", i))
		if _, err := oldSide.Register(ctx, members[i]); err != nil {
			t.Fatal(err)
		}
		if err := group.Join(ctx, members[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := group.MoveTo(ctx, c.nodes[0].ID()); err != nil {
		t.Fatalf("residence move from gob node: %v", err)
	}
	for _, m := range members {
		if got, err := bystander.Locate(ctx, m); err != nil || got != c.nodes[0].ID() {
			t.Fatalf("member %s after residence move = %v at %s, want %s", m, err, got, c.nodes[0].ID())
		}
	}

	// Break every cached connection. The next calls must redial, re-run
	// the negotiation per peer, and resend — no surfaced errors on either
	// codec flavor.
	f.ResetAll()
	eventually(t, 20*time.Second, func(ctx context.Context) error {
		if _, err := oldSide.Locate(ctx, "interop-new"); err != nil {
			return err
		}
		newSide.InvalidateLocation("interop-old")
		got, err := newSide.Locate(ctx, "interop-old")
		if err != nil {
			return err
		}
		if got != c.nodes[gobNode].ID() {
			return fmt.Errorf("post-reset locate at %s, want %s", got, c.nodes[gobNode].ID())
		}
		return nil
	})
	if got := transport.NegotiatedWireVersion(ctx, links[0], c.nodes[gobNode].ID().Addr()); got != 0 {
		t.Errorf("gob peer renegotiated to version %d after reset, want 0", got)
	}
}
