package clock

import (
	"testing"
	"time"
)

func TestRealNowMonotone(t *testing.T) {
	var c Real
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Errorf("Real.Now went backwards: %v then %v", a, b)
	}
}

func TestRealAfterFires(t *testing.T) {
	var c Real
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("Real.After(1ms) did not fire within 2s")
	}
}

func TestFakeNow(t *testing.T) {
	start := time.Date(2003, 5, 19, 0, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Errorf("Now() = %v, want %v", f.Now(), start)
	}
	f.Advance(3 * time.Second)
	if !f.Now().Equal(start.Add(3 * time.Second)) {
		t.Errorf("Now() after Advance = %v", f.Now())
	}
}

func TestFakeAfterImmediate(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) should deliver immediately")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Fatal("After(negative) should deliver immediately")
	}
}

func TestFakeAfterFiresOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before deadline")
	default:
	}
	f.Advance(time.Second)
	select {
	case got := <-ch:
		want := time.Unix(10, 0)
		if !got.Equal(want) {
			t.Errorf("After delivered %v, want %v", got, want)
		}
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestFakeSleepUnblocks(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(5 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register.
	for f.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	f.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not unblock after Advance")
	}
}

func TestFakeMultipleWaitersOrdered(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch1 := f.After(1 * time.Second)
	ch2 := f.After(2 * time.Second)
	ch3 := f.After(3 * time.Second)
	f.Advance(2 * time.Second)
	select {
	case <-ch1:
	default:
		t.Error("waiter 1 not released")
	}
	select {
	case <-ch2:
	default:
		t.Error("waiter 2 not released")
	}
	select {
	case <-ch3:
		t.Error("waiter 3 released early")
	default:
	}
	f.Advance(time.Second)
	select {
	case <-ch3:
	default:
		t.Error("waiter 3 not released at deadline")
	}
}
