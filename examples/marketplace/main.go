// Command marketplace demonstrates the mobile-agent e-commerce scenario
// that motivates agent location (paper §1): shopper agents are dispatched
// into a network of vendor nodes, roam from vendor to vendor collecting
// price quotes, and a coordinator — who never knows in advance where a
// shopper currently is — uses the location service to find each one in
// real time and retrieve its best quote so far.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"agentloc"
)

// quote is one vendor's offer.
type quote struct {
	Vendor agentloc.NodeID
	Price  int
}

// shopper is a mobile agent that visits every vendor node once, recording
// the best quote it has seen. Exported fields migrate with it.
type shopper struct {
	Mech      agentloc.Config
	Itinerary []agentloc.NodeID // vendors still to visit
	Best      quote
	Seen      int
	Assign    agentloc.Assignment
}

var (
	_ agentloc.Behavior = (*shopper)(nil)
	_ agentloc.Runner   = (*shopper)(nil)
)

// HandleRequest answers the coordinator's "best-quote" queries wherever the
// shopper happens to be.
func (s *shopper) HandleRequest(ctx *agentloc.AgentContext, kind string, payload []byte) (any, error) {
	switch kind {
	case "best-quote":
		return bestQuoteResp{Best: s.Best, Seen: s.Seen, At: ctx.Node()}, nil
	default:
		return nil, fmt.Errorf("shopper: unknown request %q", kind)
	}
}

type bestQuoteResp struct {
	Best quote
	Seen int
	At   agentloc.NodeID
}

// Run visits the current vendor (taking a price), reports its location, and
// moves on to the next vendor on the itinerary.
func (s *shopper) Run(ctx *agentloc.AgentContext) error {
	cctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	client := agentloc.NewClient(agentloc.CtxCaller{Ctx: ctx}, s.Mech)
	var err error
	if s.Assign.Zero() {
		s.Assign, err = client.Register(cctx, ctx.Self())
	} else {
		s.Assign, err = client.MoveNotify(cctx, ctx.Self(), s.Assign)
	}
	if err != nil {
		return fmt.Errorf("shopper %s: report location: %w", ctx.Self(), err)
	}

	// "Negotiate" with the local vendor: a deterministic pseudo-price.
	price := vendorPrice(ctx.Node(), ctx.Self())
	if s.Best.Vendor == "" || price < s.Best.Price {
		s.Best = quote{Vendor: ctx.Node(), Price: price}
	}
	s.Seen++

	if !ctx.Sleep(30 * time.Millisecond) { // time spent haggling
		return nil
	}
	if len(s.Itinerary) == 0 {
		return nil // tour complete; wait to be queried and retracted
	}
	next := s.Itinerary[0]
	s.Itinerary = s.Itinerary[1:]
	return ctx.Move(cctx, next)
}

// vendorPrice derives a stable pseudo-price for a (vendor, shopper) pair.
func vendorPrice(vendor agentloc.NodeID, shopper agentloc.AgentID) int {
	h := 17
	for _, c := range string(vendor) + "/" + string(shopper) {
		h = h*31 + int(c)
	}
	return 50 + (h%100+100)%100
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	agentloc.RegisterBehavior(&shopper{})

	net := agentloc.NewNetwork(agentloc.NetworkConfig{
		Latency: agentloc.FixedLatency(100 * time.Microsecond),
	})
	defer net.Close()

	vendorIDs := []agentloc.NodeID{"books-r-us", "paper-planet", "tome-depot", "chapter-one", "folio-mart"}
	var nodes []*agentloc.Node
	for _, id := range vendorIDs {
		n, err := agentloc.NewNode(agentloc.NodeConfig{ID: id, Link: net})
		if err != nil {
			return err
		}
		defer n.Close()
		nodes = append(nodes, n)
	}

	svc, err := agentloc.Deploy(ctx, agentloc.DefaultConfig(), nodes)
	if err != nil {
		return err
	}

	// Dispatch shoppers from the first vendor node, each with a shuffled
	// itinerary over the remaining vendors.
	const shoppers = 6
	r := rand.New(rand.NewSource(7))
	for i := 0; i < shoppers; i++ {
		itinerary := make([]agentloc.NodeID, len(vendorIDs)-1)
		copy(itinerary, vendorIDs[1:])
		r.Shuffle(len(itinerary), func(a, b int) { itinerary[a], itinerary[b] = itinerary[b], itinerary[a] })
		id := agentloc.AgentID(fmt.Sprintf("shopper-%d", i))
		if err := nodes[0].Launch(id, &shopper{Mech: svc.Config(), Itinerary: itinerary}); err != nil {
			return err
		}
		fmt.Printf("dispatched %s with itinerary %v\n", id, itinerary)
	}

	// The coordinator polls each shopper through the location service
	// while they roam, and prints final quotes once every vendor was
	// visited.
	coordinator := svc.ClientFor(nodes[0])
	done := make(map[agentloc.AgentID]bool, shoppers)
	for len(done) < shoppers {
		for i := 0; i < shoppers; i++ {
			id := agentloc.AgentID(fmt.Sprintf("shopper-%d", i))
			if done[id] {
				continue
			}
			where, err := coordinator.Locate(ctx, id)
			if errors.Is(err, agentloc.ErrNotRegistered) {
				continue // dispatched but not yet registered; next round
			}
			if err != nil {
				return fmt.Errorf("locate %s: %w", id, err)
			}
			var resp bestQuoteResp
			if err := nodes[0].CallAgent(ctx, where, id, "best-quote", nil, &resp); err != nil {
				// The shopper hopped between Locate and CallAgent — the
				// next poll finds its fresh location.
				continue
			}
			if resp.Seen >= len(vendorIDs) {
				fmt.Printf("%s finished at %s: best price %d from %s (visited %d vendors)\n",
					id, resp.At, resp.Best.Price, resp.Best.Vendor, resp.Seen)
				done[id] = true
			}
		}
		select {
		case <-time.After(25 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	fmt.Println("all shoppers reported; marketplace run complete")
	return nil
}
