// Package stats provides the measurement machinery the location mechanism
// depends on: sliding-window request-rate estimation (which drives the
// Tmax/Tmin rehashing thresholds of paper §4), per-agent load accounting
// (which picks even split points), and summary statistics for experiment
// reports ("statistically normalized averages", paper §5).
package stats

import (
	"sync"
	"sync/atomic"
	"time"

	"agentloc/internal/clock"
)

// RateEstimator estimates the recent rate of events (requests) per second
// over a sliding window. The paper requires "running statistics of the
// requests received by each IAgent"; a sliding window keeps the estimate
// responsive to workload shifts without being jumpy.
//
// RateEstimator is safe for concurrent use. Record is a single atomic add —
// it sits on the locate fast path, where a shared mutex would serialize the
// very readers the sharded table lets run in parallel. Pending events are
// timestamped when they are folded into the ring (at the next Rate or
// RecordN call); with folds every rate-check interval the skew is far below
// the window and cannot flip a split/merge decision.
type RateEstimator struct {
	pending atomic.Int64 // events recorded since the last fold

	mu     sync.Mutex
	clk    clock.Clock
	window time.Duration
	events []time.Time // ring of event times inside the window, oldest first
	head   int         // index of oldest event
	count  int         // events currently stored
	total  uint64      // lifetime event count
}

// NewRateEstimator returns an estimator with the given sliding window. A
// window of one to a few seconds matches the paper's "messages per second"
// thresholds.
func NewRateEstimator(clk clock.Clock, window time.Duration) *RateEstimator {
	if window <= 0 {
		window = time.Second
	}
	return &RateEstimator{
		clk:    clk,
		window: window,
		events: make([]time.Time, 64),
	}
}

// Record notes one event. It is wait-free: the event is counted now and
// folded into the sliding window at the next Rate or RecordN call.
func (r *RateEstimator) Record() {
	r.pending.Add(1)
}

// RecordN notes n simultaneous events at the current time.
func (r *RateEstimator) RecordN(n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clk.Now()
	r.fold(now)
	r.evict(now)
	for i := 0; i < n; i++ {
		r.push(now)
	}
	r.total += uint64(n)
}

// Rate returns the estimated events per second over the window.
func (r *RateEstimator) Rate() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clk.Now()
	r.fold(now)
	r.evict(now)
	return float64(r.count) / r.window.Seconds()
}

// Total returns the lifetime number of recorded events.
func (r *RateEstimator) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total + uint64(r.pending.Load())
}

// Reset clears the window (but not the lifetime total).
func (r *RateEstimator) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Events recorded up to this instant belong to the window being
	// discarded; fold them into the lifetime total without re-populating
	// the ring.
	r.total += uint64(r.pending.Swap(0))
	r.head, r.count = 0, 0
}

// fold drains atomically recorded events into the ring, timestamped now.
// Caller holds mu.
func (r *RateEstimator) fold(now time.Time) {
	n := r.pending.Swap(0)
	for i := int64(0); i < n; i++ {
		r.push(now)
	}
	r.total += uint64(n)
}

// push appends an event time, growing the ring if needed. Caller holds mu.
func (r *RateEstimator) push(t time.Time) {
	if r.count == len(r.events) {
		grown := make([]time.Time, 2*len(r.events))
		for i := 0; i < r.count; i++ {
			grown[i] = r.events[(r.head+i)%len(r.events)]
		}
		r.events = grown
		r.head = 0
	}
	r.events[(r.head+r.count)%len(r.events)] = t
	r.count++
}

// evict drops events older than the window. Caller holds mu.
func (r *RateEstimator) evict(now time.Time) {
	cutoff := now.Add(-r.window)
	for r.count > 0 && r.events[r.head].Before(cutoff) {
		r.head = (r.head + 1) % len(r.events)
		r.count--
	}
}
