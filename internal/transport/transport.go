// Package transport is the network substrate beneath the mobile-agent
// platform. It offers one abstraction — Link, an asynchronous envelope
// carrier between named endpoints — with two implementations:
//
//   - Network: an in-process simulated LAN with configurable latency,
//     jitter, message loss and partitions. Experiments and tests run on it.
//   - TCP: gob-encoded envelopes over real TCP connections, demonstrating
//     multi-process deployment of the same binaries.
//
// Package transport also provides Peer, a request/response (RPC) layer over
// any Link, with correlation ids, deadlines and remote error propagation.
package transport

import (
	"context"
	"errors"
	"fmt"

	"agentloc/internal/trace"
	"agentloc/internal/wire"
)

// Addr names an endpoint. In-memory networks use free-form names ("node-3");
// the TCP transport resolves Addrs to host:port pairs through a directory.
type Addr string

// Envelope is the unit of transfer between endpoints.
type Envelope struct {
	// From and To identify the sending and receiving endpoints.
	From, To Addr
	// Kind names the request type (e.g. "locate", "agent-transfer").
	Kind string
	// Corr correlates a reply with its request.
	Corr uint64
	// Reply marks response envelopes.
	Reply bool
	// ErrMsg carries a remote error on a reply.
	ErrMsg string
	// Trace is the causal trace context riding the envelope across the
	// wire: both Link implementations carry it verbatim, so a receiver can
	// parent its spans under the sender's. The zero value means untraced.
	Trace trace.SpanContext
	// Payload is the gob-encoded message body.
	Payload []byte
}

// Handler consumes inbound envelopes for an endpoint. Handlers may be
// invoked concurrently and must not block for long.
type Handler func(Envelope)

// Link is an asynchronous envelope carrier.
type Link interface {
	// Listen binds an address to a handler. Binding an already-bound
	// address fails.
	Listen(addr Addr, h Handler) error
	// Unlisten releases an address binding. Unknown addresses are ignored.
	Unlisten(addr Addr)
	// Send queues an envelope for delivery. Send returns once the envelope
	// is accepted; delivery is asynchronous and not guaranteed (the
	// simulated network can drop, and TCP peers can fail).
	Send(env Envelope) error
	// Close releases the link. In-flight envelopes may be dropped.
	Close() error
}

// ContextSender is optionally implemented by Links whose Send can block for
// real time — dialing, redial backoff, write deadlines. SendCtx abandons the
// attempt when ctx expires instead of seeing it through, so a caller that has
// already given up does not pin a goroutine to the full dial-backoff-resend
// sequence.
type ContextSender interface {
	SendCtx(ctx context.Context, env Envelope) error
}

// SendWithContext sends through SendCtx when the link offers it and falls
// back to plain Send otherwise (in-memory links never block long enough to
// matter).
func SendWithContext(ctx context.Context, l Link, env Envelope) error {
	if cs, ok := l.(ContextSender); ok {
		return cs.SendCtx(ctx, env)
	}
	return l.Send(env)
}

// WireNegotiator is optionally implemented by Links that negotiate a wire
// format version per peer (the TCP link handshakes on connect). WireVersion
// reports the highest hot-path message version shared with the target: 0
// means gob-only (an old peer, or negotiation not yet complete), and
// wire.MsgVersion means the peer speaks the current binary codec. The
// answer may change over time — a first call before any connection exists
// conservatively reports 0 and later calls report the handshaken version —
// so callers consult it per message, never cache it.
type WireNegotiator interface {
	WireVersion(ctx context.Context, to Addr) uint16
}

// NegotiatedWireVersion reports the hot-path message version shared with
// the target. Links that don't negotiate (the in-memory Network delivers
// structs within one build) support the current version by construction.
func NegotiatedWireVersion(ctx context.Context, l Link, to Addr) uint16 {
	if n, ok := l.(WireNegotiator); ok {
		return n.WireVersion(ctx, to)
	}
	return wire.MsgVersion
}

// Common transport errors.
var (
	// ErrClosed is returned by operations on a closed link.
	ErrClosed = errors.New("transport: link closed")
	// ErrUnknownAddr is returned when a destination cannot be resolved.
	ErrUnknownAddr = errors.New("transport: unknown address")
	// ErrAddrInUse is returned when binding an already-bound address.
	ErrAddrInUse = errors.New("transport: address already bound")
)

// RemoteError is the error type returned by Peer.Call when the remote
// handler failed; Msg is the remote error text.
type RemoteError struct {
	Kind string
	To   Addr
	Msg  string
}

// Error implements the error interface.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote %s at %s: %s", e.Kind, e.To, e.Msg)
}
