package core

import (
	"context"
	"fmt"

	"agentloc/internal/ids"
	"agentloc/internal/platform"
)

// This file implements the paper's first §7 extension: IAgent placement for
// locality — "the IAgents could move closer to the majority of the agents
// that they serve". IAgents are mobile agents, so relocation reuses the
// platform's ordinary migration; only the hash state's location directory
// needs coordinating, which the HAgent does by bumping the state version.
//
// Protocol:
//
//  1. The IAgent periodically histograms the nodes of its served agents.
//     If one node hosts at least PlacementMajority of them, differs from
//     the IAgent's current node, and the population is large enough to
//     matter, the IAgent asks the HAgent to relocate it.
//  2. The HAgent validates the request, updates Locations, bumps Ver, and
//     acknowledges. From this moment the directory points at the target
//     node even though the IAgent is still in transit; clients hitting the
//     gap get agent-not-found, refresh, and retry with backoff (§4.3
//     machinery, unchanged).
//  3. The IAgent snapshots its durable state and migrates.

// KindRequestRelocate asks the HAgent to move an IAgent's directory entry.
const KindRequestRelocate = "hash.request-relocate"

// RequestRelocateReq is sent by an IAgent that wants to move closer to its
// agents.
type RequestRelocateReq struct {
	IAgent      ids.AgentID
	From, To    platform.NodeID
	HashVersion uint64
}

// relocate serves a placement request on the HAgent.
func (b *HAgentBehavior) relocate(ctx *platform.Context, req RequestRelocateReq) (RehashResp, error) {
	if req.HashVersion < b.state.Ver || !b.state.Tree.Contains(string(req.IAgent)) {
		return RehashResp{Status: StatusIgnored, HashVersion: b.state.Ver}, nil
	}
	current, ok := b.state.Locations[req.IAgent]
	if !ok || current != req.From || req.To == "" || req.To == current {
		return RehashResp{Status: StatusIgnored, HashVersion: b.state.Ver}, nil
	}
	newState := &State{Ver: b.state.Ver + 1, Tree: b.state.Tree, Locations: copyLocations(b.state.Locations)}
	newState.Locations[req.IAgent] = req.To
	b.state = newState
	b.relocations++
	b.reg.Counter("agentloc_core_relocations_total").Inc()
	b.updateTreeGauges()
	b.persistState(ctx)
	ctx.Emit("rehash.relocate", fmt.Sprintf("%s: %s → %s, v%d", req.IAgent, req.From, req.To, newState.Ver))
	b.propagate(ctx)
	return RehashResp{Status: StatusOK, HashVersion: b.state.Ver}, nil
}

// placementTarget inspects the served agents' nodes and returns the node
// the IAgent should move to, if any.
func (b *IAgentBehavior) placementTarget(current platform.NodeID) (platform.NodeID, bool) {
	hist := make(map[platform.NodeID]int)
	total := 0
	b.Table.Range(func(_ ids.AgentID, node platform.NodeID) bool {
		hist[node]++
		total++
		return true
	})
	if total < b.Cfg.PlacementMinAgents {
		return "", false
	}
	var best platform.NodeID
	bestCount := 0
	for node, count := range hist {
		if count > bestCount {
			best, bestCount = node, count
		}
	}
	if best == "" || best == current {
		return "", false
	}
	if float64(bestCount) < b.Cfg.PlacementMajority*float64(total) {
		return "", false
	}
	return best, true
}

// maybeRelocate runs one placement round from the IAgent's Run loop. It
// returns true if the agent migrated (the caller must return so the
// platform can resume Run at the destination).
func (b *IAgentBehavior) maybeRelocate(ctx *platform.Context) (bool, error) {
	target, ok := b.placementTarget(ctx.Node())
	if !ok {
		return false, nil
	}
	version := b.state.Load().Version()
	req := RequestRelocateReq{
		IAgent:      ctx.Self(),
		From:        ctx.Node(),
		To:          target,
		HashVersion: version,
	}
	var resp RehashResp
	cctx, cancel := context.WithTimeout(context.Background(), b.Cfg.CallTimeout)
	err := ctx.Call(cctx, b.Cfg.HAgentNode, b.Cfg.HAgent, KindRequestRelocate, req, &resp)
	cancel()
	if err != nil || resp.Status != StatusOK {
		return false, err // declined or unreachable; retry next round
	}

	// Bring the local view and the durable snapshots up to date before
	// migrating: the behaviour is re-hydrated from the exported fields at
	// the destination. A fresh State value replaces the old one — readers
	// hold the previous pointer, which stays immutable.
	b.mu.Lock()
	cur := b.state.Load()
	ns := &State{Ver: resp.HashVersion, Tree: cur.Tree, Locations: copyLocations(cur.Locations)}
	ns.Locations[ctx.Self()] = target
	b.state.Store(ns)
	b.StateSnapshot = ns.DTO()
	b.mu.Unlock()
	b.LoadSnapshot = b.loads.Snapshot()

	mctx, mcancel := context.WithTimeout(context.Background(), b.Cfg.CallTimeout)
	defer mcancel()
	if err := ctx.Move(mctx, target); err != nil {
		return false, fmt.Errorf("IAgent %s: relocate to %s: %w", ctx.Self(), target, err)
	}
	return true, nil
}
