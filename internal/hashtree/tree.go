// Package hashtree implements the extendible hash function of the paper as a
// binary "hash tree" (paper §3):
//
//   - Each edge carries a label, a non-empty bit string. The first bit of a
//     label is its valid bit: 0 for an edge to a left child, 1 for an edge to
//     a right child. Any further bits of a label are "unused" — they are
//     skipped during lookup but may later be re-activated by a complex split.
//   - Each leaf corresponds to one IAgent. The concatenation of the labels
//     on the path from the root to a leaf is the leaf's hyper-label.
//   - A binary agent id is compatible with exactly one leaf: starting at the
//     root, route on the current bit (0 = left, 1 = right) and then skip the
//     remaining k-1 bits of the chosen k-bit label.
//
// Multi-bit labels arise from merges (the routing bit of a collapsed node
// becomes an unused bit) and from simple splits with m > 1 (the m-1 skipped
// bits are appended to the split leaf's incoming label). A complex split
// re-activates an unused bit.
//
// One representation detail goes beyond the paper: when a child of the root
// is merged away, the root collapses and the valid bit of the surviving
// edge has no parent edge to be appended to. The tree therefore keeps a
// RootLabel — a (possibly empty) string of ignored bits consumed before any
// routing decision. It behaves exactly like the unused bits of an ordinary
// label, including being a complex-split candidate.
//
// Trees are immutable: every mutation returns a new *Tree with an
// incremented Version. This mirrors the paper's primary/secondary copy
// scheme — the HAgent holds the newest version and stale LHAgent copies are
// detected by version comparison.
package hashtree

import (
	"errors"
	"fmt"
	"sort"

	"agentloc/internal/bitstr"
)

// Common errors returned by tree operations.
var (
	// ErrUnknownIAgent is returned when an operation names an IAgent that
	// owns no leaf of the tree.
	ErrUnknownIAgent = errors.New("hashtree: unknown IAgent")
	// ErrIDTooShort is returned by Lookup when the binary id is exhausted
	// before a leaf is reached.
	ErrIDTooShort = errors.New("hashtree: binary id shorter than tree depth")
	// ErrLastLeaf is returned when attempting to merge the only leaf.
	ErrLastLeaf = errors.New("hashtree: cannot merge the only IAgent")
	// ErrDuplicateIAgent is returned when a split would introduce an IAgent
	// id that already owns a leaf.
	ErrDuplicateIAgent = errors.New("hashtree: IAgent already present")
)

// node is either a leaf (IAgent != "") or an internal node with exactly two
// labeled children.
type node struct {
	iagent string // leaf: id of the owning IAgent

	// internal: both non-nil, labels non-empty, left label starts with 0,
	// right label starts with 1.
	leftLabel  bitstr.Bits
	left       *node
	rightLabel bitstr.Bits
	right      *node
}

func (n *node) isLeaf() bool { return n.left == nil }

// Tree is an immutable hash tree. Construct one with New or FromDTO and
// derive new versions with ApplySplit / Merge.
type Tree struct {
	version   uint64
	rootLabel bitstr.Bits
	root      *node
}

// New returns a single-leaf tree, version 1, in which the given IAgent
// serves every agent.
func New(iagent string) *Tree {
	return &Tree{version: 1, root: &node{iagent: iagent}}
}

// Version returns the tree's version. Versions increase by one per applied
// split or merge.
func (t *Tree) Version() uint64 { return t.version }

// RootLabel returns the ignored bit prefix consumed before the first routing
// decision. It is empty unless a root child has been merged away.
func (t *Tree) RootLabel() bitstr.Bits { return t.rootLabel }

// Lookup returns the id of the IAgent responsible for the given binary agent
// id (paper §3's traversal procedure). It fails with ErrIDTooShort if the id
// has fewer bits than the traversed path consumes.
func (t *Tree) Lookup(binary bitstr.Bits) (string, error) {
	pos := t.rootLabel.Len()
	n := t.root
	for !n.isLeaf() {
		if pos >= binary.Len() {
			return "", fmt.Errorf("%w: need bit %d of %d-bit id", ErrIDTooShort, pos, binary.Len())
		}
		if binary.At(pos) == 0 {
			pos += n.leftLabel.Len()
			n = n.left
		} else {
			pos += n.rightLabel.Len()
			n = n.right
		}
	}
	return n.iagent, nil
}

// Leaf describes one leaf of the tree.
type Leaf struct {
	// IAgent is the id of the IAgent owning the leaf.
	IAgent string
	// HyperLabel is the sequence of edge labels from root to leaf
	// (paper §3). It does not include the tree's RootLabel.
	HyperLabel []bitstr.Bits
	// Depth is the number of edges from the root.
	Depth int
}

// Prefix returns the concatenation of the leaf's hyper-label, i.e. the raw
// bit pattern recorded along the path (valid and unused bits alike).
func (l Leaf) Prefix() bitstr.Bits {
	out := bitstr.Empty
	for _, lab := range l.HyperLabel {
		out = out.Concat(lab)
	}
	return out
}

// HyperLabelString renders the hyper-label in the paper's dotted notation,
// e.g. "1.00.1".
func (l Leaf) HyperLabelString() string {
	if len(l.HyperLabel) == 0 {
		return "ε"
	}
	s := ""
	for i, lab := range l.HyperLabel {
		if i > 0 {
			s += "."
		}
		s += lab.Raw()
	}
	return s
}

// Leaves returns all leaves, ordered left to right.
func (t *Tree) Leaves() []Leaf {
	var out []Leaf
	var walk func(n *node, hyper []bitstr.Bits)
	walk = func(n *node, hyper []bitstr.Bits) {
		if n.isLeaf() {
			h := make([]bitstr.Bits, len(hyper))
			copy(h, hyper)
			out = append(out, Leaf{IAgent: n.iagent, HyperLabel: h, Depth: len(h)})
			return
		}
		walk(n.left, append(hyper, n.leftLabel))
		walk(n.right, append(hyper, n.rightLabel))
	}
	walk(t.root, nil)
	return out
}

// IAgents returns the ids of all IAgents in the tree, sorted.
func (t *Tree) IAgents() []string {
	leaves := t.Leaves()
	out := make([]string, len(leaves))
	for i, l := range leaves {
		out[i] = l.IAgent
	}
	sort.Strings(out)
	return out
}

// NumLeaves returns the number of IAgents (leaves).
func (t *Tree) NumLeaves() int { return len(t.Leaves()) }

// Contains reports whether the IAgent owns a leaf of the tree.
func (t *Tree) Contains(iagent string) bool {
	_, _, err := t.findLeaf(iagent)
	return err == nil
}

// LeafOf returns the leaf owned by the IAgent.
func (t *Tree) LeafOf(iagent string) (Leaf, error) {
	for _, l := range t.Leaves() {
		if l.IAgent == iagent {
			return l, nil
		}
	}
	return Leaf{}, fmt.Errorf("%w: %q", ErrUnknownIAgent, iagent)
}

// Height returns the maximum leaf depth in edges. A single-leaf tree has
// height 0.
func (t *Tree) Height() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n.isLeaf() {
			return 0
		}
		lh, rh := walk(n.left), walk(n.right)
		if rh > lh {
			lh = rh
		}
		return lh + 1
	}
	return walk(t.root)
}

// Validate checks the structural invariants: internal nodes have two
// children, edge labels are non-empty with correct valid bits, and IAgent
// ids are unique and non-empty.
func (t *Tree) Validate() error {
	seen := make(map[string]bool)
	var walk func(n *node, path string) error
	walk = func(n *node, path string) error {
		if n == nil {
			return fmt.Errorf("hashtree: nil node at %q", path)
		}
		if n.isLeaf() {
			if n.iagent == "" {
				return fmt.Errorf("hashtree: leaf with empty IAgent at %q", path)
			}
			if seen[n.iagent] {
				return fmt.Errorf("hashtree: duplicate IAgent %q", n.iagent)
			}
			seen[n.iagent] = true
			if n.right != nil {
				return fmt.Errorf("hashtree: leaf %q has a right child", n.iagent)
			}
			return nil
		}
		if n.iagent != "" {
			return fmt.Errorf("hashtree: internal node carries IAgent %q at %q", n.iagent, path)
		}
		if n.right == nil {
			return fmt.Errorf("hashtree: internal node missing right child at %q", path)
		}
		if n.leftLabel.IsEmpty() || n.leftLabel.At(0) != 0 {
			return fmt.Errorf("hashtree: bad left label %s at %q", n.leftLabel, path)
		}
		if n.rightLabel.IsEmpty() || n.rightLabel.At(0) != 1 {
			return fmt.Errorf("hashtree: bad right label %s at %q", n.rightLabel, path)
		}
		if err := walk(n.left, path+"/"+n.leftLabel.Raw()); err != nil {
			return err
		}
		return walk(n.right, path+"/"+n.rightLabel.Raw())
	}
	return walk(t.root, "")
}

// clone returns a deep copy of the tree with the same version.
func (t *Tree) clone() *Tree {
	var cp func(n *node) *node
	cp = func(n *node) *node {
		if n == nil {
			return nil
		}
		return &node{
			iagent:     n.iagent,
			leftLabel:  n.leftLabel,
			left:       cp(n.left),
			rightLabel: n.rightLabel,
			right:      cp(n.right),
		}
	}
	return &Tree{version: t.version, rootLabel: t.rootLabel, root: cp(t.root)}
}

// findLeaf locates the leaf owned by iagent and returns it together with its
// parent (nil if the leaf is the root).
func (t *Tree) findLeaf(iagent string) (leaf, parent *node, err error) {
	var walk func(n, p *node) (*node, *node)
	walk = func(n, p *node) (*node, *node) {
		if n.isLeaf() {
			if n.iagent == iagent {
				return n, p
			}
			return nil, nil
		}
		if l, lp := walk(n.left, n); l != nil {
			return l, lp
		}
		return walk(n.right, n)
	}
	l, p := walk(t.root, nil)
	if l == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownIAgent, iagent)
	}
	return l, p, nil
}

// pathTo returns the nodes from the root down to the leaf owned by iagent,
// excluding the leaf itself, together with, for each step, whether the path
// went left.
func (t *Tree) pathTo(iagent string) (nodes []*node, wentLeft []bool, err error) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if n.isLeaf() {
			return n.iagent == iagent
		}
		nodes = append(nodes, n)
		wentLeft = append(wentLeft, true)
		if walk(n.left) {
			return true
		}
		wentLeft[len(wentLeft)-1] = false
		if walk(n.right) {
			return true
		}
		nodes = nodes[:len(nodes)-1]
		wentLeft = wentLeft[:len(wentLeft)-1]
		return false
	}
	if !walk(t.root) {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownIAgent, iagent)
	}
	return nodes, wentLeft, nil
}
