// Package metricstest holds test helpers shared by every package that
// asserts on the exposition output of internal/metrics. It lives in its
// own package (rather than an _test.go file) so end-to-end tests in core,
// transport and the commands can validate scraped text the same way the
// metrics package validates its own.
package metricstest

import (
	"regexp"
	"strings"
	"testing"
)

// sampleLine matches a valid Prometheus text-format sample.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[-+]?(Inf|[0-9.eE+-]+))$`)

// ValidateText asserts that every non-comment line of a Prometheus text
// exposition parses as a sample, and returns the number of sample lines
// seen. Errors are reported through t.
func ValidateText(t testing.TB, text string) int {
	t.Helper()
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
			continue
		}
		samples++
	}
	return samples
}
